package counting

import "math/big"

// Params identifies a protocol class.
type Params struct {
	N int // nodes
	B int // bandwidth bits per ordered pair per round
	L int // private input bits per node
	T int // rounds
	// M is the nondeterministic guess size in bits per node; zero for
	// deterministic protocols (Theorem 4 counts (n, b, M+L, t)
	// protocols).
	M int
}

// ProtocolCountLog2 returns log2 of the Lemma 1 bound:
// 2 b n^2 + 2^(M + L + b t (n-1)).
func (p Params) ProtocolCountLog2() *big.Int {
	exp := p.M + p.L + p.B*p.T*(p.N-1)
	out := big.NewInt(1)
	out.Lsh(out, uint(exp)) // 2^exp
	out.Add(out, big.NewInt(int64(2*p.B*p.N*p.N)))
	return out
}

// FunctionCountLog2 returns log2 of the number of Boolean functions on
// the full input: 2^(n L).
func (p Params) FunctionCountLog2() *big.Int {
	out := big.NewInt(1)
	out.Lsh(out, uint(p.N*p.L))
	return out
}

// HardFunctionExists reports whether Lemma 1 guarantees a function with
// no (n, b, M+L, t)-protocol: the protocol count bound is strictly below
// the function count.
func (p Params) HardFunctionExists() bool {
	return p.ProtocolCountLog2().Cmp(p.FunctionCountLog2()) < 0
}

// MaxHardRounds returns the largest t such that a hard function still
// exists for (n, b, L, t), or -1 if none does even at t = 0. The paper
// quotes the threshold t < L/b - 1; the exact value computed here is
// marginally sharper because it keeps the 2 b n^2 term.
func MaxHardRounds(n, b, L int) int {
	if !(Params{N: n, B: b, L: L, T: 0}).HardFunctionExists() {
		return -1
	}
	lo, hi := 0, n*L // far beyond any possible threshold
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if (Params{N: n, B: b, L: L, T: mid}).HardFunctionExists() {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// log2ceil returns ceil(log2 n) for n >= 1.
func log2ceil(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Theorem2Params instantiates the proof of Theorem 2 for a concrete n
// and target complexity T(n): bandwidth b = ceil(log2 n), input prefix
// length L = T(n) * b, and the hard function must avoid all
// (n, b, L, T(n)/2)-protocols. Valid reports whether the premises hold
// at this n (T(n) < n / (4 log n), as the proof assumes for large n) and
// the hard function exists.
type Theorem2Witness struct {
	Params Params
	// Upper is the round budget of the containment direction: T(n)
	// rounds suffice to broadcast the L-bit prefixes.
	Upper int
	// LowerExcluded is the round budget the hard function rules out.
	LowerExcluded int
	Valid         bool
}

// Theorem2Params builds the witness parameters for given n and T(n).
func Theorem2Params(n, Tn int) Theorem2Witness {
	b := log2ceil(n)
	L := Tn * b
	w := Theorem2Witness{
		Params:        Params{N: n, B: b, L: L, T: Tn / 2},
		Upper:         Tn,
		LowerExcluded: Tn / 2,
	}
	w.Valid = Tn >= 1 && 4*Tn*b < n && L <= n/2 && w.Params.HardFunctionExists()
	return w
}

// Theorem4Witness carries the nondeterministic construction: guess size
// M = T(n) n log(n) / 4 and the inequality
// M + L + T(n) (n-1) log n < (3/4) n L from the paper's proof.
type Theorem4Witness struct {
	Params Params // with M set; T = T(n)/4 as in the proof
	Upper  int
	Valid  bool
	// PaperInequality is the proof's sufficient condition evaluated
	// exactly.
	PaperInequality bool
}

// Theorem4Params builds the witness for given n and T(n).
func Theorem4Params(n, Tn int) Theorem4Witness {
	b := log2ceil(n)
	L := Tn * b
	M := Tn * n * b / 4
	w := Theorem4Witness{
		Params: Params{N: n, B: b, L: L, T: Tn / 4, M: M},
		Upper:  Tn,
	}
	// The counted protocols run T(n)/4 rounds, so their communication
	// term is (T/4)(n-1) log n; together with M = T n log n / 4 the sum
	// stays at (1/2 + o(1)) T n log n < (3/4) n L, as in the paper.
	lhs := M + L + (Tn/4)*(n-1)*b
	rhs := 3 * n * L / 4
	w.PaperInequality = lhs < rhs
	w.Valid = Tn >= 1 && 4*Tn*b < n && w.Params.HardFunctionExists()
	return w
}

// Theorem8Witness carries the logarithmic-hierarchy separation
// parameters: T(n) = omega(n) regime with L = T(n)^2 log n and
// M = T(n) n log(n) / 4; for every k <= T(n) the Sigma^log_k protocols
// with k guesses of M bits are counted out.
type Theorem8Witness struct {
	N, K    int
	Tn      int
	Params  Params // with M = k * (per-level M); T = T(n)^2 / 4
	Valid   bool
	PaperLH int // left-hand side of the paper's inequality, in bits
	PaperRH int // right-hand side (3/4) n L
}

// Theorem8Params builds the witness for given n, level k, and T(n).
func Theorem8Params(n, k, Tn int) Theorem8Witness {
	b := log2ceil(n)
	L := Tn * Tn * b
	M := Tn * n * b / 4
	w := Theorem8Witness{
		N: n, K: k, Tn: Tn,
		Params:  Params{N: n, B: b, L: L, T: Tn * Tn / 4, M: k * M},
		PaperLH: k*M + L + Tn*Tn*(n-1)*b/4,
		PaperRH: 3 * n * L / 4,
	}
	w.Valid = k >= 1 && k <= Tn && w.PaperLH < w.PaperRH && w.Params.HardFunctionExists()
	return w
}
