package counting

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestProtocolCountLog2(t *testing.T) {
	p := Params{N: 2, B: 1, L: 2, T: 1}
	// 2*1*4 + 2^(2+1*1*1) = 8 + 8 = 16.
	if got := p.ProtocolCountLog2(); got.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("ProtocolCountLog2 = %v, want 16", got)
	}
	// Functions: 2^(2*2) = 16.
	if got := p.FunctionCountLog2(); got.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("FunctionCountLog2 = %v, want 16", got)
	}
	// Equal counts: the coarse bound does NOT prove hardness here
	// (the exhaustive diagonalisation below still finds hard functions,
	// because the bound is loose).
	if p.HardFunctionExists() {
		t.Error("bound should not certify hardness at (2,1,2,1)")
	}
	// With more input bits the bound does certify hardness.
	p = Params{N: 2, B: 1, L: 4, T: 1}
	if !p.HardFunctionExists() {
		t.Error("bound should certify hardness at (2,1,4,1)")
	}
}

func TestNondeterministicGuessCosts(t *testing.T) {
	// Adding guess bits M shrinks the certified-hard region.
	base := Params{N: 8, B: 3, L: 30, T: 2}
	if !base.HardFunctionExists() {
		t.Fatal("base parameters should be hard")
	}
	withGuess := base
	withGuess.M = 8 * 30 // huge certificates
	if withGuess.HardFunctionExists() {
		t.Error("massive nondeterminism should defeat the counting bound")
	}
}

func TestMaxHardRoundsMonotone(t *testing.T) {
	n, b, L := 16, 4, 64
	tMax := MaxHardRounds(n, b, L)
	if tMax < 0 {
		t.Fatal("no hard rounds at all")
	}
	// Paper threshold: hardness holds whenever t < L/b - 1.
	if paper := L/b - 1; tMax < paper-1 {
		t.Errorf("MaxHardRounds = %d, paper threshold suggests about %d", tMax, paper)
	}
	if (Params{N: n, B: b, L: L, T: tMax}).HardFunctionExists() == false {
		t.Error("tMax not actually hard")
	}
	if (Params{N: n, B: b, L: L, T: tMax + 1}).HardFunctionExists() {
		t.Error("tMax+1 still hard; binary search wrong")
	}
	// Property: hardness is monotone in t.
	f := func(tRaw uint8) bool {
		tt := int(tRaw % 40)
		h1 := (Params{N: n, B: b, L: L, T: tt}).HardFunctionExists()
		h2 := (Params{N: n, B: b, L: L, T: tt + 1}).HardFunctionExists()
		return h1 || !h2 // h2 implies h1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTheorem2ParamsRegime(t *testing.T) {
	// For moderate n and T(n) = sqrt(n)-ish, the construction is valid.
	n := 1 << 12
	Tn := 32 // well below n / (4 log n) = 4096/48
	w := Theorem2Params(n, Tn)
	if !w.Valid {
		t.Fatalf("Theorem 2 witness invalid at n=%d T=%d: %+v", n, Tn, w)
	}
	if w.Upper != Tn || w.LowerExcluded != Tn/2 {
		t.Errorf("round budgets wrong: %+v", w)
	}
	// T(n) beyond n/(4 log n) breaks the premise.
	bad := Theorem2Params(64, 64)
	if bad.Valid {
		t.Error("witness accepted T(n) far above n / (4 log n)")
	}
}

func TestTheorem2HierarchyChain(t *testing.T) {
	// The hierarchy-theorem picture: for fixed n, larger T(n) gives
	// languages needing more rounds; every T in a doubling chain yields
	// a valid witness, so there are problems at all these complexities.
	n := 1 << 14
	for Tn := 2; Tn*4*14 < n; Tn *= 2 {
		if w := Theorem2Params(n, Tn); !w.Valid {
			t.Errorf("no witness at n=%d T=%d", n, Tn)
		}
	}
}

func TestTheorem4Params(t *testing.T) {
	n := 1 << 12
	Tn := 32
	w := Theorem4Params(n, Tn)
	if !w.Valid {
		t.Fatalf("Theorem 4 witness invalid: %+v", w)
	}
	if !w.PaperInequality {
		t.Error("paper inequality M + L + T(n-1)log n < (3/4) n L fails")
	}
	// The guess budget M = T n log n / 4 is what Theorem 3's normal
	// form costs: certificates of O(T n log n) bits.
	if w.Params.M != Tn*n*12/4 {
		t.Errorf("M = %d", w.Params.M)
	}
}

func TestTheorem8Params(t *testing.T) {
	// T(n) = omega(n) regime: at n = 256 pick T(n) = 2n. All levels
	// k <= T(n) must be counted out, here spot-checked for small k.
	n := 256
	Tn := 2 * n
	for _, k := range []int{1, 2, 3, 8} {
		w := Theorem8Params(n, k, Tn)
		if !w.Valid {
			t.Errorf("Theorem 8 witness invalid at k=%d: LH=%d RH=%d", k, w.PaperLH, w.PaperRH)
		}
	}
	// k beyond T(n) is out of scope.
	if Theorem8Params(n, Tn+1, Tn).Valid {
		t.Error("k > T(n) accepted")
	}
}

func TestDiagonaliseL1(t *testing.T) {
	res := Diagonalise(1)
	if res.TotalFunctions != 16 {
		t.Fatalf("TotalFunctions = %d", res.TotalFunctions)
	}
	// With L=1, t=1, b=1 each node can send its whole input: every
	// function should be realisable.
	if res.Realised != 16 || res.HardExists {
		t.Errorf("L=1: realised %d/16, hard=%v; full exchange should realise all",
			res.Realised, res.HardExists)
	}
}

func TestDiagonaliseL2(t *testing.T) {
	res := Diagonalise(2)
	if res.TotalFunctions != 65536 {
		t.Fatalf("TotalFunctions = %d", res.TotalFunctions)
	}
	if !res.HardExists {
		t.Fatal("no hard function found at L=2, t=1 — but one bit cannot convey two")
	}
	if res.Realised >= res.TotalFunctions {
		t.Fatalf("Realised = %d", res.Realised)
	}
	// The first hard function must genuinely have no protocol.
	if !VerifyHard(res.FirstHard, 2) {
		t.Errorf("first hard function %#x actually has a protocol", res.FirstHard)
	}
	// And everything lexicographically before it must be realisable:
	// spot-check the boundary.
	if res.FirstHard > 0 && VerifyHard(res.FirstHard-1, 2) {
		t.Errorf("function %#x just before the first hard one also lacks a protocol",
			res.FirstHard-1)
	}
	// Sanity: the realised count respects the Lemma 1 bound (log2 of
	// valid protocols <= bound exponent).
	if res.ValidProtocols == 0 {
		t.Error("no valid protocols at all")
	}
	t.Logf("L=2: %d/65536 functions realisable; first hard table %#04x (weight %d); %d valid protocols",
		res.Realised, res.FirstHard, HammingWeight(res.FirstHard), res.ValidProtocols)
}

func TestVerifyHardOnEasyFunctions(t *testing.T) {
	// Constant functions and single-variable projections are trivially
	// computable.
	easy := []uint64{
		0x0000, // constant 0
		0xffff, // constant 1
	}
	for _, tbl := range easy {
		if VerifyHard(tbl, 2) {
			t.Errorf("easy function %#x reported hard", tbl)
		}
	}
	// AND of all four bits: node 0 sends AND(x0), node 1 replies...
	// one round suffices: out_i = AND(own) & received. Computable.
	var andTable uint64
	for x0 := 0; x0 < 4; x0++ {
		for x1 := 0; x1 < 4; x1++ {
			if x0 == 3 && x1 == 3 {
				andTable |= 1 << (x0<<2 | x1)
			}
		}
	}
	if VerifyHard(andTable, 2) {
		t.Error("4-bit AND reported hard, but a 1-bit exchange computes it")
	}
}

func TestEvalTable(t *testing.T) {
	// Table for XOR of the low bits at L=2.
	var tbl uint64
	for x0 := 0; x0 < 4; x0++ {
		for x1 := 0; x1 < 4; x1++ {
			if (x0^x1)&1 == 1 {
				tbl |= 1 << (x0<<2 | x1)
			}
		}
	}
	for x0 := 0; x0 < 4; x0++ {
		for x1 := 0; x1 < 4; x1++ {
			if EvalTable(tbl, 2, x0, x1) != (x0^x1)&1 {
				t.Fatalf("EvalTable wrong at (%d,%d)", x0, x1)
			}
		}
	}
	// Low-bit XOR needs only one bit of communication: not hard.
	if VerifyHard(tbl, 2) {
		t.Error("low-bit XOR reported hard")
	}
}
