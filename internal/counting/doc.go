// Package counting implements Section 4's machinery: the protocol
// counting bound of Lemma 1 (after Applebaum et al. [1]) and the
// inequality arithmetic behind the time hierarchy theorems (Theorem 2),
// their nondeterministic extension (Theorem 4 / Corollary 5), and the
// logarithmic-hierarchy separation (Theorem 8).
//
// A (n, b, L, t)-protocol has n nodes, b bits of bandwidth per ordered
// pair per round, L private input bits per node and t rounds; all nodes
// must output the same bit. Lemma 1 bounds the number of distinct
// protocols by
//
//	2^(2 b n^2) * 2^(2^(L + b t (n-1))),
//
// while the number of functions f : {0,1}^{nL} -> {0,1} is 2^(2^(nL)).
// Whenever the former is smaller, some function has no protocol — a
// "hard function" — and the hierarchy theorems pick their languages from
// exactly such functions. All quantities here are handled as base-2
// logarithms in big.Int form (the numbers themselves are doubly
// exponential).
package counting
