// Package fgc encodes Section 7 of the paper: the fine-grained
// complexity map of Figure 1. Problems carry two exponent upper bounds —
// the literature bound the paper cites and the bound realised by an
// implementation in this repository — and directed relations
// delta(Lo) <= delta(Hi) (an arrow *to* Lo *from* Hi in the figure).
// The package can propagate bounds through the relation closure, check
// the map for internal consistency, fit empirical exponents from
// measured round counts, and render the map as DOT.
package fgc
