package fgc

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Unbounded marks a missing upper bound.
var Unbounded = math.Inf(1)

// Problem is one node of the Figure 1 map.
type Problem struct {
	Key  string
	Name string
	// LitUpper is the exponent upper bound from the paper/literature
	// ([k] references in the Why fields of edges).
	LitUpper float64
	// ImplUpper is the exponent realised by this repository's
	// implementation (Unbounded if the problem has no direct
	// implementation here).
	ImplUpper float64
	// ImplRef names the implementing function.
	ImplRef string
	// Note carries display information (e.g. the parameter k).
	Note string
}

// Relation is a directed exponent inequality delta(Lo) <= delta(Hi).
type Relation struct {
	Lo, Hi string
	// Why cites the reduction or containment.
	Why string
}

// Map is the whole Figure 1 structure.
type Map struct {
	Problems  []Problem
	Relations []Relation
}

// omega is the matrix multiplication exponent cited by the paper
// (Le Gall [41]).
const omega = 2.3728639

// Figure1 returns the paper's map. The parameterised families (k-IS,
// k-DS, k-cycle, size-k subgraph) are instantiated at the given k >= 3.
func Figure1(k int) *Map {
	kf := float64(k)
	m := &Map{
		Problems: []Problem{
			{Key: "ring-mm", Name: "Ring MM", LitUpper: 1 - 2/omega, ImplUpper: 1.0 / 3, ImplRef: "matmul.Mul3D"},
			{Key: "boolean-mm", Name: "Boolean MM", LitUpper: 1 - 2/omega, ImplUpper: 1.0 / 3, ImplRef: "matmul.Mul3D"},
			{Key: "semiring-mm", Name: "Semiring MM", LitUpper: 1.0 / 3, ImplUpper: 1.0 / 3, ImplRef: "matmul.Mul3D"},
			{Key: "minplus-mm", Name: "(min,+) MM", LitUpper: 1.0 / 3, ImplUpper: 1.0 / 3, ImplRef: "matmul.Mul3D"},
			{Key: "transitive-closure", Name: "Transitive closure", LitUpper: 1 - 2/omega, ImplUpper: 1.0 / 3, ImplRef: "paths.TransitiveClosure"},

			{Key: "apsp-uw-ud", Name: "APSP uw/ud", LitUpper: 1 - 2/omega, ImplUpper: 1.0 / 3, ImplRef: "paths.APSP"},
			{Key: "apsp-uw-d", Name: "APSP uw/d", LitUpper: 0.2096, ImplUpper: 1.0 / 3, ImplRef: "paths.APSP"},
			{Key: "apsp-w-ud", Name: "APSP w/ud", LitUpper: 1.0 / 3, ImplUpper: 1.0 / 3, ImplRef: "paths.APSP"},
			{Key: "apsp-w-d", Name: "APSP w/d", LitUpper: 1.0 / 3, ImplUpper: 1.0 / 3, ImplRef: "paths.APSP"},
			{Key: "apsp-w-ud-2eps", Name: "APSP w/ud (2-eps)", LitUpper: 1 - 2/omega, ImplUpper: 1.0 / 3, ImplRef: "paths.ApproxAPSP"},
			{Key: "apsp-w-ud-1eps", Name: "APSP w/ud (1+eps)", LitUpper: 1 - 2/omega, ImplUpper: 1.0 / 3, ImplRef: "paths.ApproxAPSP"},

			{Key: "bfs-tree", Name: "BFS tree", LitUpper: 0, ImplUpper: 1, ImplRef: "paths.BFS"},
			{Key: "sssp-uw-ud", Name: "SSSP uw/ud", LitUpper: 0, ImplUpper: 1.0 / 3, ImplRef: "paths.SSSP/APSP"},
			{Key: "sssp-uw-d", Name: "SSSP uw/d", LitUpper: 0.2096, ImplUpper: 1.0 / 3, ImplRef: "paths.APSP"},
			{Key: "sssp-w-ud", Name: "SSSP w/ud", LitUpper: 1.0 / 3, ImplUpper: 1.0 / 3, ImplRef: "paths.SSSP/APSP"},
			{Key: "sssp-w-d", Name: "SSSP w/d", LitUpper: 1.0 / 3, ImplUpper: 1.0 / 3, ImplRef: "paths.APSP"},
			{Key: "sssp-w-ud-1eps", Name: "SSSP w/ud (1+eps)", LitUpper: 0, ImplUpper: 1.0 / 3, ImplRef: "paths.ApproxAPSP", Note: "Becker et al. [5]: n^{o(1)}"},

			{Key: "triangle", Name: "Triangle / 3-IS", LitUpper: 1 - 2/omega, ImplUpper: 1.0 / 3, ImplRef: "subgraph.DetectTriangle"},
			{Key: "size-3-subgraph", Name: "Size-3 subgraph", LitUpper: 1 - 2/omega, ImplUpper: 1.0 / 3, ImplRef: "subgraph.DetectPattern"},
			{Key: "k-cycle", Name: fmt.Sprintf("%d-cycle", k), LitUpper: 0.157, ImplUpper: 1 - 2/kf, ImplRef: "subgraph.DetectCycle", Note: "exp(k) n^{0.157} [10]"},
			{Key: "size-k-subgraph", Name: fmt.Sprintf("size-%d subgraph", k), LitUpper: 1 - 2/kf, ImplUpper: 1 - 2/kf, ImplRef: "subgraph.DetectPattern"},
			{Key: "k-is", Name: fmt.Sprintf("%d-IS", k), LitUpper: 1 - 2/kf, ImplUpper: 1 - 2/kf, ImplRef: "subgraph.DetectIndependentSet"},
			{Key: "k-ds", Name: fmt.Sprintf("%d-DS", k), LitUpper: 1 - 1/kf, ImplUpper: 1 - 1/kf, ImplRef: "domset.Find", Note: "Theorem 9 (this paper)"},
			{Key: "k-vc", Name: fmt.Sprintf("%d-VC", k), LitUpper: 0, ImplUpper: 0, ImplRef: "vcover.Find", Note: "Theorem 11 (this paper): O(k) rounds"},

			{Key: "maxis", Name: "MaxIS", LitUpper: 1, ImplUpper: 1, ImplRef: "gather.MaxIndependentSetSize"},
			{Key: "minvc", Name: "MinVC", LitUpper: 1, ImplUpper: 1, ImplRef: "gather.MinVertexCoverSize"},
			{Key: "k-col", Name: fmt.Sprintf("%d-COL", k), LitUpper: 1, ImplUpper: 1, ImplRef: "gather.KColorable / reduction.KColorableViaMaxIS"},
		},
		Relations: []Relation{
			// Matrix multiplication spine.
			{Lo: "boolean-mm", Hi: "ring-mm", Why: "Boolean product embeds in the integer ring [10]"},
			{Lo: "minplus-mm", Hi: "semiring-mm", Why: "(min,+) is a semiring instance"},
			{Lo: "transitive-closure", Hi: "boolean-mm", Why: "Boolean squaring, log n factor vanishes in the exponent [10]"},

			// Shortest paths via matrix products.
			{Lo: "apsp-w-d", Hi: "minplus-mm", Why: "(min,+) squaring, log n squarings [10]"},
			{Lo: "apsp-uw-ud", Hi: "boolean-mm", Why: "distance products on 0/1 weights [10]"},
			{Lo: "apsp-w-ud-1eps", Hi: "ring-mm", Why: "approximate distance products [10]"},
			{Lo: "boolean-mm", Hi: "apsp-w-ud-2eps", Why: "Dor-Halperin-Zwick [17]; reduction.BMMViaApproxAPSP"},

			// Trivial containments among path problems.
			{Lo: "apsp-uw-ud", Hi: "apsp-uw-d", Why: "undirected is a special case of directed"},
			{Lo: "apsp-uw-d", Hi: "apsp-w-d", Why: "unweighted is a special case of weighted"},
			{Lo: "apsp-uw-ud", Hi: "apsp-w-ud", Why: "unweighted is a special case of weighted"},
			{Lo: "apsp-w-ud", Hi: "apsp-w-d", Why: "undirected is a special case of directed"},
			{Lo: "apsp-w-ud-2eps", Hi: "apsp-w-ud-1eps", Why: "a (1+eps)-approximation is a (2-eps')-approximation"},
			{Lo: "apsp-w-ud-1eps", Hi: "apsp-w-ud", Why: "exact solves approximate"},
			{Lo: "sssp-uw-ud", Hi: "apsp-uw-ud", Why: "single source from all pairs"},
			{Lo: "sssp-uw-d", Hi: "apsp-uw-d", Why: "single source from all pairs"},
			{Lo: "sssp-w-ud", Hi: "apsp-w-ud", Why: "single source from all pairs"},
			{Lo: "sssp-w-d", Hi: "apsp-w-d", Why: "single source from all pairs"},
			{Lo: "sssp-uw-ud", Hi: "sssp-w-ud", Why: "unweighted is a special case of weighted"},
			{Lo: "sssp-uw-ud", Hi: "sssp-uw-d", Why: "undirected is a special case of directed"},
			{Lo: "sssp-w-ud", Hi: "sssp-w-d", Why: "undirected is a special case of directed"},
			{Lo: "sssp-w-ud-1eps", Hi: "sssp-w-ud", Why: "exact solves approximate"},
			{Lo: "bfs-tree", Hi: "sssp-uw-ud", Why: "BFS tree from unweighted SSSP"},

			// Subgraph detection.
			{Lo: "triangle", Hi: "boolean-mm", Why: "triangle detection from the square of the adjacency matrix [10]"},
			{Lo: "size-3-subgraph", Hi: "boolean-mm", Why: "[10]"},
			{Lo: "triangle", Hi: "size-3-subgraph", Why: "a triangle is a size-3 subgraph"},
			{Lo: "k-cycle", Hi: "size-k-subgraph", Why: "a k-cycle is a size-k subgraph"},
			{Lo: "k-is", Hi: "size-k-subgraph", Why: "independent sets are size-k subgraphs of the complement [16]"},

			// The paper's new contributions.
			{Lo: "k-is", Hi: "k-ds", Why: "Theorem 10: gadget reduction, O(k^{2 delta + 4}) overhead; reduction.FindISViaDS"},
			{Lo: "k-is", Hi: "maxis", Why: "trivial"},
			{Lo: "k-col", Hi: "maxis", Why: "clique blow-up [46]; reduction.KColorableViaMaxIS"},
			{Lo: "maxis", Hi: "minvc", Why: "complement sets (Gallai)"},
			{Lo: "minvc", Hi: "maxis", Why: "complement sets (Gallai)"},
		},
	}
	return m
}

// Get returns the problem with the given key.
func (m *Map) Get(key string) (*Problem, bool) {
	for i := range m.Problems {
		if m.Problems[i].Key == key {
			return &m.Problems[i], true
		}
	}
	return nil, false
}

// ImpliedUpper propagates upper bounds through the relations until a
// fixed point: delta(Lo) <= delta(Hi) lets Hi's bound flow to Lo. If
// fromImpl is true the implemented bounds seed the propagation,
// otherwise the literature bounds do.
func (m *Map) ImpliedUpper(fromImpl bool) map[string]float64 {
	out := make(map[string]float64, len(m.Problems))
	for _, p := range m.Problems {
		if fromImpl {
			out[p.Key] = p.ImplUpper
		} else {
			out[p.Key] = p.LitUpper
		}
	}
	for changed := true; changed; {
		changed = false
		for _, r := range m.Relations {
			if out[r.Hi] < out[r.Lo] {
				out[r.Lo] = out[r.Hi]
				changed = true
			}
		}
	}
	return out
}

// Validate checks the structural sanity of the map: every relation
// endpoint exists, no self-loops, keys unique, and the literature bounds
// already respect the relations (Figure 1 is drawn consistently).
func (m *Map) Validate() []string {
	var issues []string
	seen := make(map[string]bool)
	for _, p := range m.Problems {
		if seen[p.Key] {
			issues = append(issues, "duplicate key "+p.Key)
		}
		seen[p.Key] = true
	}
	for _, r := range m.Relations {
		if !seen[r.Lo] || !seen[r.Hi] {
			issues = append(issues, fmt.Sprintf("relation %s <= %s references unknown key", r.Lo, r.Hi))
		}
		if r.Lo == r.Hi {
			issues = append(issues, "self-loop at "+r.Lo)
		}
	}
	implied := m.ImpliedUpper(false)
	for _, p := range m.Problems {
		if implied[p.Key] < p.LitUpper-1e-9 {
			issues = append(issues, fmt.Sprintf(
				"%s: literature bound %.4f is not the tightest implied (%.4f) — figure should be drawn with the implied bound",
				p.Key, p.LitUpper, implied[p.Key]))
		}
	}
	return issues
}

// FitExponent estimates delta from measured (n, rounds) pairs by
// least-squares on log(rounds) ~ delta * log(n) + c. Needs at least two
// distinct n.
func FitExponent(ns []int, rounds []int) float64 {
	if len(ns) != len(rounds) || len(ns) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range ns {
		x := math.Log(float64(ns[i]))
		y := math.Log(float64(rounds[i]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	k := float64(len(ns))
	den := k*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (k*sxy - sx*sy) / den
}

// DOT renders the map in Graphviz format, annotating nodes with both
// bounds.
func (m *Map) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph figure1 {\n  rankdir=BT;\n")
	keys := make([]string, 0, len(m.Problems))
	for _, p := range m.Problems {
		keys = append(keys, p.Key)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p, _ := m.Get(k)
		fmt.Fprintf(&sb, "  %q [label=%q];\n", p.Key,
			fmt.Sprintf("%s\\nlit<=%.3f impl<=%.3f", p.Name, p.LitUpper, p.ImplUpper))
	}
	for _, r := range m.Relations {
		fmt.Fprintf(&sb, "  %q -> %q;\n", r.Lo, r.Hi)
	}
	sb.WriteString("}\n")
	return sb.String()
}
