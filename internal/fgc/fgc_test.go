package fgc

import (
	"math"
	"strings"
	"testing"
)

func TestFigure1Validates(t *testing.T) {
	for _, k := range []int{3, 4, 5} {
		m := Figure1(k)
		if issues := m.Validate(); len(issues) != 0 {
			t.Errorf("k=%d: %v", k, issues)
		}
	}
}

func TestImpliedBoundsRespectFigureArrows(t *testing.T) {
	m := Figure1(3)
	lit := m.ImpliedUpper(false)
	impl := m.ImpliedUpper(true)
	for _, r := range m.Relations {
		if lit[r.Lo] > lit[r.Hi]+1e-9 {
			t.Errorf("literature: delta(%s)=%.4f > delta(%s)=%.4f violates %q",
				r.Lo, lit[r.Lo], r.Hi, lit[r.Hi], r.Why)
		}
		if impl[r.Lo] > impl[r.Hi]+1e-9 {
			t.Errorf("implemented: delta(%s)=%.4f > delta(%s)=%.4f violates %q",
				r.Lo, impl[r.Lo], r.Hi, impl[r.Hi], r.Why)
		}
	}
}

func TestKeyBoundsFromThePaper(t *testing.T) {
	m := Figure1(3)
	cases := []struct {
		key  string
		want float64
	}{
		{"k-ds", 1 - 1.0/3},      // Theorem 9
		{"k-is", 1 - 2.0/3},      // Dolev et al. [16]
		{"k-vc", 0},              // Theorem 11
		{"ring-mm", 1 - 2/omega}, // Censor-Hillel et al. [10]
		{"semiring-mm", 1.0 / 3}, // [10]
		{"apsp-uw-d", 0.2096},    // Le Gall [42]
		{"sssp-w-ud-1eps", 0},    // Becker et al. [5]
	}
	for _, c := range cases {
		p, ok := m.Get(c.key)
		if !ok {
			t.Fatalf("missing problem %s", c.key)
		}
		if math.Abs(p.LitUpper-c.want) > 1e-9 {
			t.Errorf("%s: LitUpper = %.4f, want %.4f", c.key, p.LitUpper, c.want)
		}
	}
}

func TestTheorem10ArrowPresent(t *testing.T) {
	m := Figure1(4)
	found := false
	for _, r := range m.Relations {
		if r.Lo == "k-is" && r.Hi == "k-ds" {
			found = true
			if !strings.Contains(r.Why, "Theorem 10") {
				t.Error("k-IS <= k-DS arrow not attributed to Theorem 10")
			}
		}
	}
	if !found {
		t.Error("the paper's headline reduction arrow is missing")
	}
	// And it is consistent: 1 - 2/k <= 1 - 1/k.
	kis, _ := m.Get("k-is")
	kds, _ := m.Get("k-ds")
	if kis.LitUpper > kds.LitUpper {
		t.Error("k-IS bound above k-DS bound; arrow direction confused")
	}
}

func TestImpliedUpperPropagates(t *testing.T) {
	m := &Map{
		Problems: []Problem{
			{Key: "a", LitUpper: 1, ImplUpper: 1},
			{Key: "b", LitUpper: 0.5, ImplUpper: 0.5},
			{Key: "c", LitUpper: 0.25, ImplUpper: Unbounded},
		},
		Relations: []Relation{
			{Lo: "a", Hi: "b"}, // delta(a) <= delta(b)
			{Lo: "b", Hi: "c"},
		},
	}
	lit := m.ImpliedUpper(false)
	if lit["a"] != 0.25 || lit["b"] != 0.25 {
		t.Errorf("literature propagation wrong: %v", lit)
	}
	impl := m.ImpliedUpper(true)
	if impl["a"] != 0.5 {
		t.Errorf("implemented propagation should stop at b's 0.5: %v", impl)
	}
}

func TestValidateCatchesBrokenMaps(t *testing.T) {
	m := &Map{
		Problems:  []Problem{{Key: "a"}, {Key: "a"}},
		Relations: []Relation{{Lo: "a", Hi: "zz"}, {Lo: "a", Hi: "a"}},
	}
	issues := m.Validate()
	if len(issues) < 3 {
		t.Errorf("expected duplicate/unknown/self-loop issues, got %v", issues)
	}
}

func TestFitExponent(t *testing.T) {
	// Perfect power law rounds = 2 n^{1/3}.
	var ns, rounds []int
	for _, n := range []int{64, 216, 512, 1000} {
		ns = append(ns, n)
		rounds = append(rounds, int(2*math.Cbrt(float64(n))))
	}
	got := FitExponent(ns, rounds)
	if math.Abs(got-1.0/3) > 0.05 {
		t.Errorf("fit = %.4f, want ~0.333", got)
	}
	// Linear scaling fits delta = 1.
	ns, rounds = nil, nil
	for _, n := range []int{32, 64, 128, 256} {
		ns = append(ns, n)
		rounds = append(rounds, n/4)
	}
	if got := FitExponent(ns, rounds); math.Abs(got-1) > 0.05 {
		t.Errorf("fit = %.4f, want ~1", got)
	}
	if !math.IsNaN(FitExponent([]int{3}, []int{4})) {
		t.Error("single point should not fit")
	}
}

func TestDOTContainsAllNodes(t *testing.T) {
	m := Figure1(3)
	dot := m.DOT()
	for _, p := range m.Problems {
		if !strings.Contains(dot, p.Key) {
			t.Errorf("DOT output missing %s", p.Key)
		}
	}
	if !strings.Contains(dot, "digraph") {
		t.Error("not a digraph")
	}
}
