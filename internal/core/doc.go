// Package core ties the repository together as the paper's complexity
// theory: decision problems, the deterministic and nondeterministic
// complexity classes CLIQUE(T) and NCLIQUE(T), conformance checking of
// distributed solvers against centralized oracles, and the canonical
// edge labelling problems of Theorem 6 that capture all of NCLIQUE(1).
package core
