package core

import (
	"fmt"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/nondet"
)

// Problem is a decision problem: a (computable) family of graphs,
// represented by its centralized membership oracle. The paper does not
// require closure under isomorphism and neither do we.
type Problem struct {
	// Name identifies the problem in reports.
	Name string
	// Contains is the membership oracle (may be exponential time; the
	// model cares only about rounds).
	Contains func(g *graph.Graph) bool
}

// Solver is a deterministic distributed decision algorithm: every node
// returns its output bit, and the algorithm's answer is well-defined
// only if all nodes agree (the model's output convention).
type Solver func(nd clique.Endpoint, row graph.Bitset) bool

// RoundBound is a complexity function T(n), e.g. func(n) { return 1 }
// for CLIQUE(1).
type RoundBound func(n int) int

// Class describes a complexity class CLIQUE(T) or NCLIQUE(T).
type Class struct {
	Name           string
	Bound          RoundBound
	Nondetermistic bool
}

// CLIQUE returns the deterministic class descriptor for T.
func CLIQUE(name string, T RoundBound) Class {
	return Class{Name: "CLIQUE(" + name + ")", Bound: T}
}

// NCLIQUE returns the nondeterministic class descriptor for T.
func NCLIQUE(name string, T RoundBound) Class {
	return Class{Name: "NCLIQUE(" + name + ")", Bound: T, Nondetermistic: true}
}

// Conformance is the outcome of checking a solver against a problem on
// a set of instances.
type Conformance struct {
	Instances int
	MaxRounds int
	// Violations lists human-readable failures (wrong answers,
	// disagreeing nodes, round-bound breaches).
	Violations []string
}

// Ok reports whether the solver conformed on every instance.
func (c Conformance) Ok() bool { return len(c.Violations) == 0 }

// CheckSolves runs the solver on each instance and verifies (1) all
// nodes agree, (2) the answer matches the oracle, and (3) the round
// count respects the class bound (with a constant factor c, since class
// membership is up to O()).
func CheckSolves(cfg clique.Config, p Problem, s Solver, cls Class, cFactor int, instances []*graph.Graph) Conformance {
	out := Conformance{Instances: len(instances)}
	for idx, g := range instances {
		runCfg := cfg
		runCfg.N = g.N
		bits := make([]bool, g.N)
		res, err := clique.Run(runCfg, func(nd *clique.Node) {
			bits[nd.ID()] = s(nd, g.Row(nd.ID()))
		})
		if err != nil {
			out.Violations = append(out.Violations,
				fmt.Sprintf("instance %d: run failed: %v", idx, err))
			continue
		}
		for v := 1; v < g.N; v++ {
			if bits[v] != bits[0] {
				out.Violations = append(out.Violations,
					fmt.Sprintf("instance %d: nodes 0 and %d disagree", idx, v))
				break
			}
		}
		if want := p.Contains(g); bits[0] != want {
			out.Violations = append(out.Violations,
				fmt.Sprintf("instance %d: answered %v, oracle says %v", idx, bits[0], want))
		}
		if res.Stats.Rounds > out.MaxRounds {
			out.MaxRounds = res.Stats.Rounds
		}
		if limit := cFactor * cls.Bound(g.N); res.Stats.Rounds > limit {
			out.Violations = append(out.Violations,
				fmt.Sprintf("instance %d: %d rounds exceeds %d = %d * %s",
					idx, res.Stats.Rounds, limit, cFactor, cls.Name))
		}
	}
	return out
}

// CheckNondetSolves verifies the NCLIQUE semantics on instances: for
// yes-instances the prover's certificate must be accepted within the
// round bound, and for no-instances the caller-supplied certificate
// space must contain no accepted labelling (checked exhaustively, so
// spaces must be small).
func CheckNondetSolves(cfg clique.Config, p Problem, alg nondet.Algorithm,
	prover func(g *graph.Graph) nondet.Labelling, space nondet.LabelSpace,
	cls Class, cFactor int, instances []*graph.Graph) Conformance {

	out := Conformance{Instances: len(instances)}
	for idx, g := range instances {
		runCfg := cfg
		runCfg.N = g.N
		if p.Contains(g) {
			z := prover(g)
			if z == nil {
				out.Violations = append(out.Violations,
					fmt.Sprintf("instance %d: prover failed on yes-instance", idx))
				continue
			}
			verdict, err := nondet.RunVerifier(runCfg, g, alg, z)
			if err != nil {
				out.Violations = append(out.Violations,
					fmt.Sprintf("instance %d: %v", idx, err))
				continue
			}
			if !verdict.Accepted {
				out.Violations = append(out.Violations,
					fmt.Sprintf("instance %d: honest certificate rejected", idx))
			}
			if r := verdict.Result.Stats.Rounds; r > out.MaxRounds {
				out.MaxRounds = r
			}
			if limit := cFactor * cls.Bound(g.N); verdict.Result.Stats.Rounds > limit {
				out.Violations = append(out.Violations,
					fmt.Sprintf("instance %d: round bound exceeded", idx))
			}
		} else {
			found, _, err := nondet.ExhaustiveDecide(runCfg, g, alg, space)
			if err != nil {
				out.Violations = append(out.Violations,
					fmt.Sprintf("instance %d: %v", idx, err))
				continue
			}
			if found {
				out.Violations = append(out.Violations,
					fmt.Sprintf("instance %d: certificate accepted on no-instance", idx))
			}
		}
	}
	return out
}
