package core

import (
	"strings"
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/nondet"
	"repro/internal/subgraph"
	"repro/internal/vcover"
)

func instances(n int, count int) []*graph.Graph {
	var out []*graph.Graph
	for seed := uint64(0); seed < uint64(count); seed++ {
		out = append(out, graph.Gnp(n, 0.3+0.05*float64(seed), seed))
	}
	return out
}

func TestCheckSolvesTriangleDetection(t *testing.T) {
	p := Problem{Name: "triangle", Contains: graph.HasTriangle}
	s := func(nd clique.Endpoint, row graph.Bitset) bool {
		return subgraph.DetectTriangle(nd, row)
	}
	cls := CLIQUE("n^{1/3}", func(n int) int {
		r := 1
		for r*r*r < n {
			r++
		}
		return r
	})
	conf := CheckSolves(clique.Config{WordsPerPair: 4}, p, s, cls, 40, instances(12, 5))
	if !conf.Ok() {
		t.Fatalf("violations: %v", conf.Violations)
	}
	if conf.MaxRounds == 0 {
		t.Error("no rounds recorded")
	}
}

func TestCheckSolvesCatchesWrongAnswers(t *testing.T) {
	p := Problem{Name: "triangle", Contains: graph.HasTriangle}
	s := func(nd clique.Endpoint, row graph.Bitset) bool {
		nd.Tick()
		return false // always says no
	}
	cls := CLIQUE("1", func(n int) int { return 1 })
	withTriangle := graph.Complete(6)
	conf := CheckSolves(clique.Config{}, p, s, cls, 1, []*graph.Graph{withTriangle})
	if conf.Ok() {
		t.Fatal("constant-no solver passed on K6")
	}
	if !strings.Contains(conf.Violations[0], "oracle") {
		t.Errorf("unexpected violation: %v", conf.Violations)
	}
}

func TestCheckSolvesCatchesRoundBreach(t *testing.T) {
	p := Problem{Name: "trivial", Contains: func(*graph.Graph) bool { return true }}
	s := func(nd clique.Endpoint, row graph.Bitset) bool {
		for i := 0; i < 10; i++ {
			nd.Tick()
		}
		return true
	}
	cls := CLIQUE("1", func(n int) int { return 1 })
	conf := CheckSolves(clique.Config{}, p, s, cls, 2, instances(5, 1))
	if conf.Ok() {
		t.Fatal("10-round solver passed a 2-round budget")
	}
}

func TestCheckSolvesVertexCoverFPT(t *testing.T) {
	// Theorem 11 as a class-membership statement: k-VC for k=3 is in
	// CLIQUE(1) up to the constant 1+k.
	k := 3
	p := Problem{Name: "3-VC", Contains: func(g *graph.Graph) bool {
		return graph.HasVertexCoverOfSize(g, k)
	}}
	s := func(nd clique.Endpoint, row graph.Bitset) bool {
		return vcover.Decide(nd, row, k)
	}
	cls := CLIQUE("1", func(n int) int { return 1 })
	conf := CheckSolves(clique.Config{}, p, s, cls, 1+k, instances(14, 4))
	if !conf.Ok() {
		t.Fatalf("violations: %v", conf.Violations)
	}
}

func TestCheckNondetSolves(t *testing.T) {
	k := 3
	p := Problem{Name: "3-colourability", Contains: func(g *graph.Graph) bool {
		return graph.IsKColorable(g, k)
	}}
	cls := NCLIQUE("1", func(n int) int { return 1 })
	// Mix of yes (planted colourable) and no (odd wheel-ish) instances,
	// all tiny so the exhaustive no-side stays cheap.
	g1, _ := graph.PlantedColoring(5, 3, 0.8, 1)
	no := graph.Complete(4) // K4 needs 4 colours
	conf := CheckNondetSolves(clique.Config{}, p, nondet.KColoringVerifier(k),
		func(g *graph.Graph) nondet.Labelling { return nondet.KColoringProver(g, k) },
		nondet.WordSpace(uint64(k)), cls, 1, []*graph.Graph{g1, no})
	if !conf.Ok() {
		t.Fatalf("violations: %v", conf.Violations)
	}
}

func TestEdgeLabellingVerify(t *testing.T) {
	// Toy edge labelling problem: the label of {u, v} must equal
	// (u + v) mod 3. A valid labelling verifies; a corrupted or
	// inconsistent one does not.
	p := EdgeLabellingProblem{
		Name:     "sum-mod-3",
		MaxLabel: 3,
		Allowed: func(n, u, v int, row graph.Bitset, label uint64) bool {
			return label == uint64((u+v)%3)
		},
	}
	n := 6
	g := graph.Gnp(n, 0.5, 2)
	good := NewEdgeLabelling(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			good.Set(u, v, uint64((u+v)%3))
		}
	}
	run := func(l EdgeLabelling) bool {
		bits := make([]bool, n)
		_, err := clique.Run(clique.Config{N: n}, func(nd *clique.Node) {
			bits[nd.ID()] = VerifyEdgeLabelling(nd, g.Row(nd.ID()), p, l[nd.ID()])
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bits {
			if !b {
				return false
			}
		}
		return true
	}
	if !run(good) {
		t.Error("valid labelling rejected")
	}
	bad := NewEdgeLabelling(n)
	for u := 0; u < n; u++ {
		copy(bad[u], good[u])
	}
	bad.Set(1, 2, uint64((1+2)%3+1)%3)
	if run(bad) {
		t.Error("corrupted labelling accepted")
	}
	// One-sided (inconsistent) labelling.
	oneSided := NewEdgeLabelling(n)
	for u := 0; u < n; u++ {
		copy(oneSided[u], good[u])
	}
	oneSided[3][4] = (good[3][4] + 1) % 3 // only node 3's view changes
	if run(oneSided) {
		t.Error("inconsistent labelling accepted")
	}
}

func TestSolveEdgeLabellingTrivial(t *testing.T) {
	// Solvable toy problem: label must be 1 iff {u,v} is an input edge.
	p := EdgeLabellingProblem{
		Name:     "indicator",
		MaxLabel: 2,
		Allowed: func(n, u, v int, row graph.Bitset, label uint64) bool {
			want := uint64(0)
			if row.Has(v) {
				want = 1
			}
			return label == want
		},
	}
	n := 5
	g := graph.Gnp(n, 0.5, 7)
	rows := make([][]uint64, n)
	_, err := clique.Run(clique.Config{N: n}, func(nd *clique.Node) {
		rows[nd.ID()] = SolveEdgeLabellingTrivial(nd, g.Row(nd.ID()), p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		if rows[u] == nil {
			t.Fatal("solver found no labelling for a satisfiable problem")
		}
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			want := uint64(0)
			if g.HasEdge(u, v) {
				want = 1
			}
			if rows[u][v] != want {
				t.Errorf("label(%d,%d) = %d, want %d", u, v, rows[u][v], want)
			}
		}
	}
	// Unsatisfiable problem: labels must be both 0 and 1.
	bad := EdgeLabellingProblem{
		Name:     "contradiction",
		MaxLabel: 2,
		Allowed: func(n, u, v int, row graph.Bitset, label uint64) bool {
			if u < v {
				return label == 0
			}
			return label == 1
		},
	}
	_, err = clique.Run(clique.Config{N: 4}, func(nd *clique.Node) {
		if got := SolveEdgeLabellingTrivial(nd, graph.New(4).Row(nd.ID()), bad); got != nil {
			nd.Fail("contradictory problem solved: %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompileNCLIQUE1RoundTrip(t *testing.T) {
	// Theorem 6 completeness: transcripts of an accepting k-colouring
	// run yield edge labels the compiled verifier accepts in O(1)
	// rounds; tampering breaks them.
	k := 3
	g, _ := graph.PlantedColoring(5, k, 0.7, 13)
	alg := nondet.KColoringVerifier(k)
	z := nondet.KColoringProver(g, k)
	if z == nil {
		t.Fatal("prover failed")
	}
	verdict, err := nondet.RunVerifier(clique.Config{N: g.N, RecordTranscript: true}, g, alg, z)
	if err != nil || !verdict.Accepted {
		t.Fatalf("accepting run failed: %v %v", err, verdict.Accepted)
	}
	labels := LabelsFromTranscripts(verdict.Result.Transcripts, 1, uint64(k))
	compiled := CompileNCLIQUE1("kcol-canonical", alg, 1, nondet.WordSpace(uint64(k)), uint64(k))

	run := func(l EdgeLabelling) (bool, int) {
		bits := make([]bool, g.N)
		res, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
			bits[nd.ID()] = VerifyCompiled(nd, g.Row(nd.ID()), compiled, l[nd.ID()])
		})
		if err != nil {
			t.Fatal(err)
		}
		all := true
		for _, b := range bits {
			all = all && b
		}
		return all, res.Stats.Rounds
	}
	ok, rounds := run(labels)
	if !ok {
		t.Fatal("compiled verifier rejected honest transcript labels")
	}
	if rounds != 1 {
		t.Errorf("compiled verification took %d rounds, want 1", rounds)
	}
	// Tamper with one edge label.
	bad := NewEdgeLabelling(g.N)
	for u := range bad {
		copy(bad[u], labels[u])
	}
	bad.Set(0, 1, (labels[0][1]+1)%compiled.MaxLabel)
	if ok, _ := run(bad); ok {
		t.Error("tampered edge label accepted")
	}
}

func TestSumWordsCheck(t *testing.T) {
	_, err := clique.Run(clique.Config{N: 5}, func(nd *clique.Node) {
		if !SumWordsCheck(nd, true) {
			nd.Fail("all-true vote rejected")
		}
		if SumWordsCheck(nd, nd.ID() != 2) {
			nd.Fail("vote with one dissent accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
