package core

import (
	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/gather"
	"repro/internal/graph"
	"repro/internal/nondet"
)

// This file implements Theorem 6's canonical problem family for
// NCLIQUE(1): edge labelling problems. A neighbourhood constraint C
// gives, for each clique edge {u, v} and each endpoint's input
// neighbourhood, the set of allowed O(log n)-bit edge labels; the
// problem is to label ALL edges of the communication clique (not just
// the input graph's edges) so that every edge's label is allowed at both
// endpoints. Theorem 6: NCLIQUE(1) is contained in CLIQUE(T) iff all
// edge labelling problems are solvable in O(T) rounds — so these
// problems are "complete" for constant-round nondeterminism.

// Constraint decides whether `label` is allowed on the clique edge
// {u, v} from u's side, given u's input row. It must be computable (and
// is evaluated locally by u, which knows its own row).
type Constraint func(n, u, v int, row graph.Bitset, label uint64) bool

// EdgeLabellingProblem bundles a constraint with the label alphabet
// size.
type EdgeLabellingProblem struct {
	Name string
	// MaxLabel bounds labels: valid labels are < MaxLabel. The model
	// requires MaxLabel = poly(n) so labels fit in O(log n) bits.
	MaxLabel uint64
	// Allowed is the neighbourhood constraint C_{n,u,v,row}.
	Allowed Constraint
}

// EdgeLabelling assigns a label to every unordered clique edge; the
// in-model representation gives node v the labels of its incident
// edges, labels[v][u] for u != v, with labels[v][u] == labels[u][v]
// (checked during verification).
type EdgeLabelling [][]uint64

// NewEdgeLabelling allocates an all-zero labelling for n nodes.
func NewEdgeLabelling(n int) EdgeLabelling {
	l := make(EdgeLabelling, n)
	for i := range l {
		l[i] = make([]uint64, n)
	}
	return l
}

// Set assigns a label to edge {u, v} on both sides.
func (l EdgeLabelling) Set(u, v int, label uint64) {
	l[u][v] = label
	l[v][u] = label
}

// VerifyEdgeLabelling checks a proposed labelling in-model in O(1)
// rounds: one round in which each node sends each incident label to the
// other endpoint (consistency), plus local constraint evaluation at
// both endpoints. myLabels is this node's row of the labelling. Every
// node returns its local verdict; the labelling is valid iff all nodes
// accept — making this the NCLIQUE(1) verifier of the edge labelling
// problem with the labelling itself as certificate.
func VerifyEdgeLabelling(nd clique.Endpoint, row graph.Bitset, p EdgeLabellingProblem, myLabels []uint64) bool {
	n := nd.N()
	me := nd.ID()
	peers, delivered := comm.AllToAllWord(nd, myLabels)
	ok := true
	for v := 0; v < n; v++ {
		if v == me {
			continue
		}
		if !delivered[v] || peers[v] != myLabels[v] {
			ok = false // endpoints disagree about the edge's label
			continue
		}
		if myLabels[v] >= p.MaxLabel || !p.Allowed(n, me, v, row, myLabels[v]) {
			ok = false
		}
	}
	return ok
}

// SolveEdgeLabellingTrivial realises the containment direction of
// Theorem 6 at T(n) = n / log n: every node gathers the entire input
// graph, deterministically enumerates labellings of its incident edges
// in a globally consistent way (all nodes run the same enumeration over
// the same reconstructed input), and returns its incident labels of the
// lexicographically-first valid labelling, or nil if none exists.
// Exponential local search; instances must stay tiny.
func SolveEdgeLabellingTrivial(nd clique.Endpoint, row graph.Bitset, p EdgeLabellingProblem) []uint64 {
	n := nd.N()
	full := gather.Full(nd, row)

	type edge struct{ u, v int }
	var edges []edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, edge{u, v})
		}
	}
	labels := NewEdgeLabelling(n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(edges) {
			return true
		}
		e := edges[i]
		for lab := uint64(0); lab < p.MaxLabel; lab++ {
			if !p.Allowed(n, e.u, e.v, full.Row(e.u), lab) ||
				!p.Allowed(n, e.v, e.u, full.Row(e.v), lab) {
				continue
			}
			labels.Set(e.u, e.v, lab)
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	if !rec(0) {
		return nil
	}
	return labels[nd.ID()]
}

// CompileNCLIQUE1 converts a constant-round nondeterministic verifier
// into an edge labelling problem, following the proof of Theorem 6: the
// label of edge {u, v} encodes the messages of an accepting run of A on
// that edge (both directions, all T rounds), and the constraint at u
// demands that u's incident labels are realisable — that some original
// certificate makes A, fed exactly these incoming messages, send
// exactly these outgoing messages and accept.
//
// Because the paper's constraints are per-edge, the per-edge check here
// is necessarily an existential projection (u checks each edge against
// its whole incident label row via the LabelRow closure it is given at
// verification time); the compiled problem is exposed as a RowConstraint
// below, the natural in-model object.
type CompiledProblem struct {
	Name string
	// T is the verifier's round bound.
	T int
	// MaxLabel bounds the packed per-edge labels.
	MaxLabel uint64
	// CheckRow decides whether a node's full incident label row is
	// realisable: some original label makes A reproduce it and accept.
	CheckRow func(nd clique.Endpoint, row graph.Bitset, labelRow []uint64) bool
}

// CompileNCLIQUE1 compiles verifier A (round bound T, one word per pair
// per round, original label space `space`) into its canonical edge
// labelling problem. Edge labels pack the 2T message words of the edge
// into one value via base-(maxWord+1) positional encoding; maxWord must
// bound every word A sends (poly(n), so labels stay O(log n) bits for
// constant T).
func CompileNCLIQUE1(name string, alg nondet.Algorithm, T int, space nondet.LabelSpace, maxWord uint64) CompiledProblem {
	base := maxWord + 2 // one slot reserved for "no message"
	pow := func(e int) uint64 {
		out := uint64(1)
		for i := 0; i < e; i++ {
			out *= base
		}
		return out
	}
	maxLabel := pow(2 * T)

	return CompiledProblem{
		Name:     name,
		T:        T,
		MaxLabel: maxLabel,
		CheckRow: func(nd clique.Endpoint, row graph.Bitset, labelRow []uint64) bool {
			n := nd.N()
			me := nd.ID()
			// Decode the incident labels into per-round sent/received
			// words. Slot value 0 means "no message"; w+1 encodes word w.
			inbox := make([][][]uint64, T)
			sent := make([][][]uint64, T)
			for r := 0; r < T; r++ {
				inbox[r] = make([][]uint64, n)
				sent[r] = make([][]uint64, n)
			}
			for v := 0; v < n; v++ {
				if v == me {
					continue
				}
				lab := labelRow[v]
				if lab >= maxLabel {
					return false
				}
				// Slots 2r (u -> v where u < v) and 2r+1 (v -> u).
				lo, hi := me, v
				meFirst := true
				if lo > hi {
					lo, hi = hi, lo
					meFirst = false
				}
				for r := 0; r < T; r++ {
					s0 := lab / pow(2*r) % base   // lo -> hi in round r
					s1 := lab / pow(2*r+1) % base // hi -> lo in round r
					mySend, myRecv := s0, s1
					if !meFirst {
						mySend, myRecv = s1, s0
					}
					if mySend > 0 {
						sent[r][v] = []uint64{mySend - 1}
					}
					if myRecv > 0 {
						inbox[r][v] = []uint64{myRecv - 1}
					}
				}
			}
			// Local search over original labels, replaying A against
			// the decoded inbox and demanding the decoded outbox.
			found := false
			space(func(cand []uint64) bool {
				accepted := false
				rep, err := clique.Replay(clique.Config{N: n, WordsPerPair: 1}, me,
					func(sim *clique.Node) {
						accepted = alg(sim, row, cand)
					}, inbox)
				if err != nil || !rep.Completed || !accepted || len(rep.Sent) != T {
					return true
				}
				for r := 0; r < T; r++ {
					for v := 0; v < n; v++ {
						if v == me {
							continue
						}
						if !wordsEq(rep.Sent[r][v], sent[r][v]) {
							return true
						}
					}
				}
				found = true
				return false
			})
			return found
		},
	}
}

// VerifyCompiled runs the compiled problem's verifier in-model: one
// consistency round for the labels plus the local realisability check.
// Constant rounds, as Theorem 6 requires.
func VerifyCompiled(nd clique.Endpoint, row graph.Bitset, p CompiledProblem, labelRow []uint64) bool {
	n := nd.N()
	me := nd.ID()
	peers, delivered := comm.AllToAllWord(nd, labelRow)
	ok := true
	for v := 0; v < n; v++ {
		if v == me {
			continue
		}
		if !delivered[v] || peers[v] != labelRow[v] {
			ok = false
		}
	}
	return ok && p.CheckRow(nd, row, labelRow)
}

// LabelsFromTranscripts builds the edge labelling of an accepting run
// from its recorded transcripts (the completeness direction of
// Theorem 6).
func LabelsFromTranscripts(trs []*clique.Transcript, T int, maxWord uint64) EdgeLabelling {
	n := len(trs)
	base := maxWord + 2
	pow := func(e int) uint64 {
		out := uint64(1)
		for i := 0; i < e; i++ {
			out *= base
		}
		return out
	}
	labels := NewEdgeLabelling(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			var lab uint64
			for r := 0; r < T && r < len(trs[u].Rounds); r++ {
				if s := trs[u].Rounds[r].Sent[v]; len(s) == 1 {
					lab += (s[0] + 1) * pow(2*r)
				}
				if s := trs[v].Rounds[r].Sent[u]; len(s) == 1 {
					lab += (s[0] + 1) * pow(2*r+1)
				}
			}
			labels.Set(u, v, lab)
		}
	}
	return labels
}

func wordsEq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SumWordsCheck is a tiny helper kept for examples: the global AND of
// each node's verdict, computed in one round.
func SumWordsCheck(nd clique.Endpoint, ok bool) bool {
	votes := comm.BroadcastWord(nd, clique.BoolWord(ok))
	for _, v := range votes {
		if v == 0 {
			return false
		}
	}
	return true
}
