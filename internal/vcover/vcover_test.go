package vcover

import (
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
)

func runFind(t *testing.T, g *graph.Graph, k int) (Result, *clique.Result) {
	t.Helper()
	out := make([]Result, g.N)
	res, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
		out[nd.ID()] = Find(nd, g.Row(nd.ID()), k)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.N; v++ {
		if out[v].Found != out[0].Found || len(out[v].Cover) != len(out[0].Cover) {
			t.Fatalf("nodes disagree: %+v vs %+v", out[v], out[0])
		}
		for i := range out[v].Cover {
			if out[v].Cover[i] != out[0].Cover[i] {
				t.Fatalf("nodes disagree on cover")
			}
		}
	}
	return out[0], res
}

func TestFindMatchesOracle(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := graph.Gnp(14, 0.25, seed+30)
		opt := graph.MinVertexCoverSize(g)
		for _, k := range []int{opt - 1, opt, opt + 2} {
			if k < 0 {
				continue
			}
			got, _ := runFind(t, g, k)
			want := k >= opt
			if got.Found != want {
				t.Errorf("seed %d k=%d (opt %d): Found = %v", seed, k, opt, got.Found)
			}
			if got.Found {
				if len(got.Cover) > k {
					t.Errorf("seed %d: cover size %d > budget %d", seed, len(got.Cover), k)
				}
				if !graph.IsVertexCover(g, got.Cover) {
					t.Errorf("seed %d: returned set is not a cover", seed)
				}
			}
		}
	}
}

func TestPlantedCover(t *testing.T) {
	g, _ := graph.PlantedVertexCover(24, 4, 0.5, 3)
	got, _ := runFind(t, g, 4)
	if !got.Found {
		t.Fatal("planted 4-cover not found")
	}
	if !graph.IsVertexCover(g, got.Cover) {
		t.Fatal("witness is not a cover")
	}
}

func TestHighDegreeKernel(t *testing.T) {
	// A star K_{1,9} with k=1: the centre has degree 9 > 1 and is
	// forced; the kernel is empty.
	g := graph.CompleteBipartite(1, 9)
	got, _ := runFind(t, g, 1)
	if !got.Found || len(got.Cover) != 1 || got.Cover[0] != 0 {
		t.Fatalf("star cover: %+v", got)
	}
	if got.KernelSize != 1 {
		t.Errorf("kernel size = %d, want 1", got.KernelSize)
	}
}

func TestOverfullKernelRejects(t *testing.T) {
	// K8 with k=2: every vertex has degree 7 > 2, so 8 > 2 vertices are
	// forced and the algorithm must reject.
	g := graph.Complete(8)
	got, _ := runFind(t, g, 2)
	if got.Found {
		t.Error("K8 accepted with k=2")
	}
	if got.KernelSize != 8 {
		t.Errorf("kernel size = %d, want 8", got.KernelSize)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(7)
	got, _ := runFind(t, g, 0)
	if !got.Found || len(got.Cover) != 0 {
		t.Errorf("empty graph k=0: %+v", got)
	}
}

func TestRoundsDependOnlyOnK(t *testing.T) {
	// Theorem 11's headline is rounds = 1 + k regardless of n; the
	// packed main phase improves that to exactly
	// 1 + min(k, ceil(ceil(n/64)/wpp)) — never more than 1 + k, and
	// still independent of the input graph (only n, k, wpp matter).
	want := func(n, k int) int {
		packed := (n + 63) / 64 // wordsPerPair is 1 in runFind
		if packed < k {
			return 1 + packed
		}
		return 1 + k
	}
	for _, n := range []int{10, 20, 40, 80, 140} {
		g, _ := graph.PlantedVertexCover(n, 3, 0.4, uint64(n))
		_, res := runFind(t, g, 3)
		if res.Stats.Rounds != want(n, 3) {
			t.Errorf("n=%d: rounds = %d, want exactly %d", n, res.Stats.Rounds, want(n, 3))
		}
		if res.Stats.Rounds > 1+3 {
			t.Errorf("n=%d: rounds = %d exceed Theorem 11's 1+k", n, res.Stats.Rounds)
		}
	}
	// Below the packed crossover the classic shape still grows linearly
	// in k; above it the packed broadcast caps the cost.
	g, _ := graph.PlantedVertexCover(30, 3, 0.4, 9)
	for _, k := range []int{1, 2, 3, 6, 12} {
		_, res := runFind(t, g, k)
		if res.Stats.Rounds != want(30, k) {
			t.Errorf("k=%d: rounds = %d, want %d", k, res.Stats.Rounds, want(30, k))
		}
	}
}

func TestBussLemmaHolds(t *testing.T) {
	// Lemma 12: in every yes-instance, each vertex of degree > k is in
	// the returned cover.
	for seed := uint64(0); seed < 4; seed++ {
		g, _ := graph.PlantedVertexCover(18, 4, 0.6, seed)
		got, _ := runFind(t, g, 4)
		if !got.Found {
			continue
		}
		inCover := make(map[int]bool)
		for _, v := range got.Cover {
			inCover[v] = true
		}
		for v := 0; v < g.N; v++ {
			if g.Degree(v) > 4 && !inCover[v] {
				t.Errorf("seed %d: degree-%d vertex %d missing from cover", seed, g.Degree(v), v)
			}
		}
	}
}
