package vcover

import (
	"sort"

	"repro/internal/bitvec"
	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/trace"
)

// Result is the outcome, identical at every node: all nodes run the same
// deterministic local solve on the same kernel, so no agreement round is
// needed.
type Result struct {
	// Found reports whether a vertex cover of size at most k exists.
	Found bool
	// Cover is a vertex cover of size at most k if Found, nil
	// otherwise. It is the union of the high-degree kernel vertices and
	// the local optimum on the kernel.
	Cover []int
	// KernelSize is the number of high-degree vertices forced into the
	// cover during preprocessing, reported for the experiments.
	KernelSize int
}

// Find looks for a vertex cover of size at most k. row is this node's
// adjacency bitset.
//
// Rounds: exactly 1 + min(k, pr), where pr = ceil(ceil(n/64) /
// wordsPerPair) is the cost of one bit-packed row broadcast. The main
// phase announces each node's uncovered edges either over the paper's k
// presence-coded one-word rounds or — when strictly cheaper — as one
// packed adjacency-mask broadcast over the packed collective plane;
// both shapes have a fixed round count agreed from (n, k, wordsPerPair)
// alone, so yes- and no-instances stay indistinguishable by cost, and
// the count never exceeds Theorem 11's 1 + k.
func Find(nd clique.Endpoint, row graph.Bitset, k int) Result {
	n := nd.N()
	me := nd.ID()
	if k < 0 {
		nd.Fail("vcover: negative k")
	}

	// Preprocessing round: high-degree vertices announce themselves.
	endPhase := trace.Phase(nd, "vcover/high-degree")
	deg := row.Count()
	inC := comm.Flags(nd, deg > k)
	var forced []int
	for v := 0; v < n; v++ {
		if inC[v] {
			forced = append(forced, v)
		}
	}

	// If more than k vertices are forced, no size-k cover exists; all
	// nodes still run the k broadcast rounds so that the round count is
	// the same on yes- and no-instances (and every node reaches the same
	// conclusion from the same data).
	overfull := len(forced) > k
	endPhase()

	// Main phase: nodes outside C announce their uncovered edges (at
	// most k of them — their degree is <= k). Every node derives the
	// same shape choice from public quantities, so the round count is
	// input-independent either way.
	var mine []int
	if !inC[me] {
		row.Each(func(u int) {
			if !inC[u] {
				mine = append(mine, u)
			}
		})
	}
	if len(mine) > k {
		// Degree <= k outside C, so this cannot happen on a legal run.
		nd.Fail("vcover: %d uncovered edges at a low-degree node", len(mine))
	}
	kernel := graph.New(n)
	endPhase = trace.Phase(nd, "vcover/kernel-rounds")
	defer endPhase()
	wpp := nd.WordsPerPair()
	packedRounds := (bitvec.Words(n) + wpp - 1) / wpp
	if packedRounds < k {
		// Packed shape: one bit-row broadcast of the uncovered-neighbour
		// mask (nodes in C broadcast the zero mask), fewer rounds than
		// the k one-word rounds whenever n/64 is small against k.
		mask := bitvec.NewRow(n)
		for _, u := range mine {
			mask.Set(u)
		}
		table := comm.BroadcastBitRows(nd, mask, n)
		for v, rowMask := range table {
			rowMask.Each(func(u int) {
				if u != v {
					kernel.AddEdge(v, u)
				}
			})
		}
	} else {
		// The paper's shape: one optional word per round for k rounds.
		words := make([]uint64, len(mine))
		for i, u := range mine {
			words[i] = clique.PairWord(me, u, n)
		}
		comm.BroadcastRounds(nd, words, k, func(_, _ int, w uint64) {
			a, b := clique.UnpairWord(w, n)
			kernel.AddEdge(a, b)
		})
		for _, u := range mine {
			kernel.AddEdge(me, u)
		}
	}

	if overfull {
		return Result{KernelSize: len(forced)}
	}

	// Local solve: minimum vertex cover of the kernel within the
	// remaining budget. Local computation is free in the model.
	rest := graph.FindVertexCover(kernel, k-len(forced))
	if rest == nil {
		return Result{KernelSize: len(forced)}
	}
	cover := append(append([]int(nil), forced...), rest...)
	sort.Ints(cover)
	return Result{Found: true, Cover: cover, KernelSize: len(forced)}
}

// Decide is the decision version: does a vertex cover of size at most k
// exist?
func Decide(nd clique.Endpoint, row graph.Bitset, k int) bool {
	return Find(nd, row, k).Found
}
