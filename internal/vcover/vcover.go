package vcover

import (
	"sort"

	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
)

// Result is the outcome, identical at every node: all nodes run the same
// deterministic local solve on the same kernel, so no agreement round is
// needed.
type Result struct {
	// Found reports whether a vertex cover of size at most k exists.
	Found bool
	// Cover is a vertex cover of size at most k if Found, nil
	// otherwise. It is the union of the high-degree kernel vertices and
	// the local optimum on the kernel.
	Cover []int
	// KernelSize is the number of high-degree vertices forced into the
	// cover during preprocessing, reported for the experiments.
	KernelSize int
}

// Find looks for a vertex cover of size at most k. row is this node's
// adjacency bitset. Rounds: exactly 1 + k.
func Find(nd clique.Endpoint, row graph.Bitset, k int) Result {
	n := nd.N()
	me := nd.ID()
	if k < 0 {
		nd.Fail("vcover: negative k")
	}

	// Preprocessing round: high-degree vertices announce themselves.
	deg := row.Count()
	inC := comm.Flags(nd, deg > k)
	var forced []int
	for v := 0; v < n; v++ {
		if inC[v] {
			forced = append(forced, v)
		}
	}

	// If more than k vertices are forced, no size-k cover exists; all
	// nodes still run the k broadcast rounds so that the round count is
	// the same on yes- and no-instances (and every node reaches the same
	// conclusion from the same data).
	overfull := len(forced) > k

	// Main phase: nodes outside C broadcast their uncovered edges, at
	// most k of them (their degree is <= k), one per round; k global
	// rounds in total.
	var mine []int
	var words []uint64
	if !inC[me] {
		row.Each(func(u int) {
			if !inC[u] {
				mine = append(mine, u)
				words = append(words, clique.PairWord(me, u, n))
			}
		})
	}
	if len(mine) > k {
		// Degree <= k outside C, so this cannot happen on a legal run.
		nd.Fail("vcover: %d uncovered edges at a low-degree node", len(mine))
	}
	kernel := graph.New(n)
	comm.BroadcastRounds(nd, words, k, func(_, _ int, w uint64) {
		a, b := clique.UnpairWord(w, n)
		kernel.AddEdge(a, b)
	})
	for _, u := range mine {
		kernel.AddEdge(me, u)
	}

	if overfull {
		return Result{KernelSize: len(forced)}
	}

	// Local solve: minimum vertex cover of the kernel within the
	// remaining budget. Local computation is free in the model.
	rest := graph.FindVertexCover(kernel, k-len(forced))
	if rest == nil {
		return Result{KernelSize: len(forced)}
	}
	cover := append(append([]int(nil), forced...), rest...)
	sort.Ints(cover)
	return Result{Found: true, Cover: cover, KernelSize: len(forced)}
}

// Decide is the decision version: does a vertex cover of size at most k
// exist?
func Decide(nd clique.Endpoint, row graph.Bitset, k int) bool {
	return Find(nd, row, k).Found
}
