// Package vcover implements Theorem 11 of the paper: a vertex cover of
// size k can be found in O(k) rounds in the congested clique — the
// round complexity depends only on the parameter k, not on n, which is
// the paper's point of contrast with k-IS and k-DS in Section 7.3.
//
// The algorithm is the distributed Buss kernelisation (Lemma 12): every
// vertex of degree > k must belong to any size-k cover, so such vertices
// join the cover and announce it (one round); the remaining vertices
// have degree <= k, so each can broadcast all of its still-uncovered
// edges in k rounds; every node then solves the kernel locally. When a
// single bit-packed broadcast of the uncovered-neighbour mask is
// strictly cheaper than those k one-word rounds, the kernel exchange
// rides the packed collective plane instead, capping the cost at
// 1 + min(k, ceil(ceil(n/64)/wordsPerPair)) rounds while keeping the
// fixed-cost shape (and thus yes/no indistinguishability) intact.
package vcover
