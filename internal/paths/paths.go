package paths

import (
	"math"

	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/matmul"
)

// infWord encodes graph.Inf on the wire; any value >= infWord decodes to
// graph.Inf.
const infWord = uint64(graph.Inf)

func encodeDist(d int64) uint64 {
	if d >= graph.Inf {
		return infWord
	}
	return uint64(d)
}

func decodeDist(w uint64) int64 {
	if w >= infWord {
		return graph.Inf
	}
	return int64(w)
}

// BFSResult is one node's share of a BFS tree.
type BFSResult struct {
	// Dist is the hop distance from the source, or graph.Inf if
	// unreachable.
	Dist int64
	// Parent is the BFS-tree parent (smallest-id frontier neighbour),
	// -1 for the source and for unreachable nodes.
	Parent int
}

// BFS builds a BFS tree from src. row is this node's adjacency bitset.
// Each round the newly settled frontier announces itself with a single
// broadcast bit; unsettled nodes with a frontier neighbour join. The
// algorithm runs ecc(src)+2 rounds: one per BFS layer plus an empty round
// that every node observes simultaneously and interprets as termination.
func BFS(nd clique.Endpoint, row graph.Bitset, src int) BFSResult {
	me := nd.ID()
	n := nd.N()
	res := BFSResult{Dist: graph.Inf, Parent: -1}
	settled := me == src
	if settled {
		res.Dist = 0
	}
	announce := settled // I joined the frontier in the previous "round"
	for depth := int64(1); ; depth++ {
		frontier := comm.Flags(nd, announce)
		announce = false
		anyAnnounced := false
		for p := 0; p < n; p++ {
			if p == me || !frontier[p] {
				continue
			}
			anyAnnounced = true
			if !settled && row.Has(p) {
				settled = true
				res.Dist = depth
				res.Parent = p
				announce = true
			}
		}
		if !anyAnnounced {
			return res
		}
	}
}

// SSSPResult is one node's share of a shortest-path computation.
type SSSPResult struct {
	// Dist is the node's distance from the source (graph.Inf if
	// unreachable).
	Dist int64
	// Rounds is the number of Bellman-Ford iterations executed,
	// reported for the experiment harness.
	Rounds int
}

// SSSP computes single-source shortest paths by distributed
// Bellman-Ford: every round each node broadcasts its tentative distance
// (one word) and relaxes over its incident edges. inRow[u] must hold the
// weight of the edge u -> me (for undirected graphs this is the node's
// ordinary weight row). Converges in h+1 rounds where h is the maximum
// hop count of a shortest path tree — O(n) worst case, O(log n)-ish on
// dense random graphs. Termination is detected globally: a round in
// which no broadcast value changed is visible to all nodes at once.
func SSSP(nd clique.Endpoint, inRow []int64, src int) SSSPResult {
	me := nd.ID()
	n := nd.N()
	dist := graph.Inf
	if me == src {
		dist = 0
	}
	// Termination must be decided identically at every node, or some
	// nodes would leave the loop a round before others. The predicate
	// "did any node's round-r broadcast differ from its round-(r-1)
	// broadcast" is computable by everyone from the same data (each
	// node's own broadcast included), and once it is false the
	// relaxation inputs have stabilised, so distances are final.
	lastSeen := make([]uint64, n)
	seen := make([]uint64, n) // reused broadcast table, one per round
	rounds := 0
	first := true
	for {
		rounds++
		seen = comm.BroadcastWordInto(nd, encodeDist(dist), seen)
		changed := first
		for u := 0; u < n; u++ {
			w := seen[u]
			if u != me {
				du := decodeDist(w)
				if du < graph.Inf && inRow[u] < graph.Inf {
					if alt := du + inRow[u]; alt < dist {
						dist = alt
					}
				}
			}
			if !first && w != lastSeen[u] {
				changed = true
			}
			lastSeen[u] = w
		}
		if !changed {
			return SSSPResult{Dist: dist, Rounds: rounds}
		}
		first = false
	}
}

// hopRounds returns how many squarings cover paths of up to n-1 hops:
// ceil(log2(n-1)) with a minimum of 1.
func hopRounds(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n - 1))))
}

// APSP computes this node's row of the all-pairs shortest path matrix by
// repeated (min,+) squaring of the weight matrix: D_{2h} = D_h (x) D_h.
// ceil(log2 (n-1)) squarings suffice because shortest paths have at most
// n-1 edges. With mul = matmul.Mul3D this runs in O(n^{1/3} log n)
// rounds, the implemented upper bound for weighted directed APSP in
// Figure 1. wRow is the node's weight row (out-edges for directed
// graphs) with 0 on the diagonal.
func APSP(nd clique.Endpoint, wRow []int64, mul matmul.MulFunc) []int64 {
	row := append([]int64(nil), wRow...)
	for i := 0; i < hopRounds(nd.N()); i++ {
		row = mul(nd, matmul.MinPlus{}, row, row)
	}
	return row
}

// TransitiveClosure computes this node's row of the reflexive-transitive
// closure by Boolean squaring of (A or I). adjRow is the node's Boolean
// adjacency row. Figure 1 places transitive closure with Boolean matrix
// multiplication; the implemented bound is O(n^{1/3} log n) rounds via
// Mul3D.
func TransitiveClosure(nd clique.Endpoint, adjRow []int64, mul matmul.MulFunc) []int64 {
	row := append([]int64(nil), adjRow...)
	row[nd.ID()] = 1 // reflexive
	for i := 0; i < hopRounds(nd.N()); i++ {
		row = mul(nd, matmul.Boolean{}, row, row)
	}
	return row
}

// ApproxAPSP computes a (1+eps)-approximate APSP row: exact (min,+)
// squarings interleaved with rounding every entry up to the next power
// of (1+delta), delta = eps/(2 * squarings). Each squaring then inflates
// distances by at most (1+delta), so the final values D' satisfy
// D <= D' <= (1+delta)^squarings * D <= (1+eps) * D for eps <= 1.
// Round complexity matches exact APSP; the paper's Figure 1 uses
// approximate variants only as reduction targets, and this implementation
// realises the approximation guarantee those arrows rely on.
func ApproxAPSP(nd clique.Endpoint, wRow []int64, eps float64, mul matmul.MulFunc) []int64 {
	if eps <= 0 {
		nd.Fail("paths: ApproxAPSP needs eps > 0")
	}
	squarings := hopRounds(nd.N())
	delta := eps / (2 * float64(squarings))
	row := append([]int64(nil), wRow...)
	for i := 0; i < squarings; i++ {
		row = mul(nd, matmul.MinPlus{}, row, row)
		for j, d := range row {
			row[j] = roundUpPow(d, delta)
		}
	}
	return row
}

// roundUpPow inflates d to floor(d * (1+delta)), leaving 0 and Inf
// alone. The result is at least d and at most (1+delta) * d, which is
// the per-squaring inflation the ApproxAPSP error analysis needs.
// (Rounding to integer powers of (1+delta) would break the multiplicative
// bound for small integer distances, where the ceiling can jump by a
// factor of 3/2.)
func roundUpPow(d int64, delta float64) int64 {
	if d <= 0 || d >= graph.Inf {
		return d
	}
	return d + int64(float64(d)*delta)
}

// Diameter computes the (unweighted, undirected) diameter of the input
// graph: every node computes its row of hop distances via APSP on the
// 0/1/Inf weight matrix, takes a local maximum of the finite entries,
// and one max-reduction round combines them. Returns graph.Inf if the
// graph is disconnected.
func Diameter(nd clique.Endpoint, adjRow []int64, mul matmul.MulFunc) int64 {
	n := nd.N()
	wRow := make([]int64, n)
	for j, a := range adjRow {
		switch {
		case j == nd.ID():
			wRow[j] = 0
		case a != 0:
			wRow[j] = 1
		default:
			wRow[j] = graph.Inf
		}
	}
	row := APSP(nd, wRow, mul)
	local := int64(0)
	disconnected := false
	for _, d := range row {
		if d >= graph.Inf {
			disconnected = true
		} else if d > local {
			local = d
		}
	}
	if disconnected {
		local = graph.Inf
	}
	return decodeDist(comm.MaxWord(nd, encodeDist(local)))
}
