package paths

import (
	"testing"
	"testing/quick"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/matmul"
)

func TestBFSOnKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		src  int
	}{
		{"path", graph.Path(7), 0},
		{"cycle", graph.Cycle(8), 3},
		{"complete", graph.Complete(6), 2},
		{"disconnected", func() *graph.Graph {
			g := graph.New(6)
			g.AddEdge(0, 1)
			g.AddEdge(1, 2)
			g.AddEdge(4, 5)
			return g
		}(), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := graph.BFSDistances(c.g, c.src)
			got := make([]BFSResult, c.g.N)
			_, err := clique.Run(clique.Config{N: c.g.N}, func(nd *clique.Node) {
				got[nd.ID()] = BFS(nd, c.g.Row(nd.ID()), c.src)
			})
			if err != nil {
				t.Fatal(err)
			}
			for v := range got {
				if got[v].Dist != want[v] {
					t.Errorf("dist(%d) = %d, want %d", v, got[v].Dist, want[v])
				}
				switch {
				case v == c.src:
					if got[v].Parent != -1 {
						t.Errorf("source parent = %d", got[v].Parent)
					}
				case want[v] >= graph.Inf:
					if got[v].Parent != -1 {
						t.Errorf("unreachable node %d has parent %d", v, got[v].Parent)
					}
				default:
					p := got[v].Parent
					if p < 0 || !c.g.HasEdge(v, p) || want[p]+1 != want[v] {
						t.Errorf("node %d parent %d invalid", v, p)
					}
				}
			}
		})
	}
}

func TestBFSRoundsTrackEccentricity(t *testing.T) {
	g := graph.Path(10)
	res, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
		BFS(nd, g.Row(nd.ID()), 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	// ecc(0) = 9 layers + termination detection.
	if res.Stats.Rounds < 9 || res.Stats.Rounds > 12 {
		t.Errorf("BFS on P10 used %d rounds, want about 10", res.Stats.Rounds)
	}
}

func TestSSSPUnweightedMatchesBFS(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.Gnp(12, 0.25, seed)
		w := graph.FromUnweighted(g)
		want := graph.BFSDistances(g, 0)
		got := make([]int64, g.N)
		_, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
			got[nd.ID()] = SSSP(nd, w.W[nd.ID()], 0).Dist
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := range got {
			if got[v] != want[v] {
				t.Errorf("seed %d: dist(%d) = %d, want %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestSSSPWeighted(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.GnpWeighted(11, 0.3, 20, false, seed)
		want := graph.FloydWarshall(g)
		src := int(seed) % g.N
		got := make([]int64, g.N)
		_, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
			got[nd.ID()] = SSSP(nd, g.W[nd.ID()], src).Dist
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := range got {
			if got[v] != want[src][v] {
				t.Errorf("seed %d: dist(%d,%d) = %d, want %d", seed, src, v, got[v], want[src][v])
			}
		}
	}
}

func TestSSSPPathGraphTermination(t *testing.T) {
	// The path graph exercises the worst-case h+O(1) iteration count and
	// the simultaneous-exit logic (a bug here deadlocks or fails the
	// run).
	g := graph.FromUnweighted(graph.Path(9))
	_, err := clique.Run(clique.Config{N: 9}, func(nd *clique.Node) {
		r := SSSP(nd, g.W[nd.ID()], 0)
		if r.Dist != int64(nd.ID()) {
			nd.Fail("dist = %d, want %d", r.Dist, nd.ID())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func runAPSP(t *testing.T, g *graph.Weighted, mul matmul.MulFunc) [][]int64 {
	t.Helper()
	out := make([][]int64, g.N)
	_, err := clique.Run(clique.Config{N: g.N, WordsPerPair: 8}, func(nd *clique.Node) {
		out[nd.ID()] = APSP(nd, g.W[nd.ID()], mul)
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAPSPUndirectedWeighted(t *testing.T) {
	g := graph.GnpWeighted(13, 0.3, 30, false, 9)
	want := graph.FloydWarshall(g)
	got := runAPSP(t, g, matmul.Mul3D)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("dist(%d,%d) = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestAPSPDirectedWeighted(t *testing.T) {
	g := graph.GnpWeighted(12, 0.3, 30, true, 10)
	want := graph.FloydWarshall(g)
	got := runAPSP(t, g, matmul.MulNaive)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("dist(%d,%d) = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := graph.New(10)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(5, 6)
	g.AddEdge(6, 7)
	g.AddEdge(7, 8)
	want := graph.TransitiveClosureOracle(g)
	got := make([][]int64, g.N)
	_, err := clique.Run(clique.Config{N: g.N, WordsPerPair: 4}, func(nd *clique.Node) {
		row := make([]int64, g.N)
		g.Neighbors(nd.ID(), func(u int) { row[u] = 1 })
		got[nd.ID()] = TransitiveClosure(nd, row, matmul.Mul3D)
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		for v := range want[u] {
			if (got[u][v] != 0) != want[u][v] {
				t.Errorf("closure(%d,%d) = %d, want %v", u, v, got[u][v], want[u][v])
			}
		}
	}
}

func TestApproxAPSPGuarantee(t *testing.T) {
	for _, eps := range []float64{0.1, 0.5, 1.0} {
		g := graph.GnpWeighted(12, 0.35, 100, false, 12)
		want := graph.FloydWarshall(g)
		got := make([][]int64, g.N)
		_, err := clique.Run(clique.Config{N: g.N, WordsPerPair: 8}, func(nd *clique.Node) {
			got[nd.ID()] = ApproxAPSP(nd, g.W[nd.ID()], eps, matmul.MulNaive)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for j := range want[i] {
				d, a := want[i][j], got[i][j]
				if d >= graph.Inf {
					if a < graph.Inf {
						t.Fatalf("eps=%v: approx found path %d->%d where none exists", eps, i, j)
					}
					continue
				}
				if a < d {
					t.Fatalf("eps=%v: approx %d below true distance %d for (%d,%d)", eps, a, d, i, j)
				}
				if float64(a) > (1+eps)*float64(d)+1e-9 {
					t.Fatalf("eps=%v: approx %d exceeds (1+eps)*%d for (%d,%d)", eps, a, d, i, j)
				}
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int64
	}{
		{graph.Path(8), 7},
		{graph.Cycle(8), 4},
		{graph.Complete(7), 1},
		{func() *graph.Graph {
			g := graph.New(5)
			g.AddEdge(0, 1)
			return g
		}(), graph.Inf},
	}
	for _, c := range cases {
		got := make([]int64, c.g.N)
		_, err := clique.Run(clique.Config{N: c.g.N, WordsPerPair: 4}, func(nd *clique.Node) {
			row := make([]int64, c.g.N)
			c.g.Neighbors(nd.ID(), func(u int) { row[u] = 1 })
			got[nd.ID()] = Diameter(nd, row, matmul.MulNaive)
		})
		if err != nil {
			t.Fatal(err)
		}
		for v, d := range got {
			if d != c.want {
				t.Errorf("node %d: diameter = %d, want %d", v, d, c.want)
			}
		}
	}
}

func TestEncodeDecodeDist(t *testing.T) {
	f := func(x uint32) bool {
		d := int64(x)
		return decodeDist(encodeDist(d)) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if decodeDist(encodeDist(graph.Inf)) != graph.Inf {
		t.Error("Inf does not round-trip")
	}
	if decodeDist(encodeDist(graph.Inf+5)) != graph.Inf {
		t.Error("beyond-Inf does not clamp")
	}
}

func TestRoundUpPow(t *testing.T) {
	if got := roundUpPow(0, 0.1); got != 0 {
		t.Errorf("roundUpPow(0) = %d", got)
	}
	if got := roundUpPow(graph.Inf, 0.1); got != graph.Inf {
		t.Errorf("roundUpPow(Inf) = %d", got)
	}
	for _, d := range []int64{1, 2, 3, 10, 99, 1000} {
		got := roundUpPow(d, 0.25)
		if got < d {
			t.Errorf("roundUpPow(%d) = %d below input", d, got)
		}
		if float64(got) > 1.25*float64(d)+1 {
			t.Errorf("roundUpPow(%d) = %d too large", d, got)
		}
	}
}

func TestHopRounds(t *testing.T) {
	cases := []struct{ n, want int }{{2, 1}, {3, 1}, {4, 2}, {5, 2}, {9, 3}, {17, 4}, {33, 5}}
	for _, c := range cases {
		if got := hopRounds(c.n); got != c.want {
			t.Errorf("hopRounds(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
