// Package paths implements the shortest-path and reachability problems
// from the left column of Figure 1 of the paper: BFS trees, single-source
// shortest paths (unweighted/weighted), all-pairs shortest paths via
// (min,+) matrix squaring, transitive closure via Boolean squaring, and
// (1+eps)-approximate distances via rounded squaring.
//
// Inputs follow the model's convention: every algorithm takes only the
// calling node's local view (its adjacency or weight row) plus globally
// known parameters (source id, epsilon), and returns the node's own share
// of the output.
package paths
