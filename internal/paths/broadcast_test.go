package paths

import (
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
)

func TestSSSPRunsInBroadcastCongestedClique(t *testing.T) {
	// Bellman-Ford only ever broadcasts, so it is a *broadcast*
	// congested clique algorithm (the weaker model of Drucker et al.
	// [19] discussed in the paper's related work); the engine enforces
	// the restriction.
	g := graph.GnpWeighted(12, 0.3, 15, false, 5)
	want := graph.FloydWarshall(g)
	got := make([]int64, g.N)
	res, err := clique.Run(clique.Config{N: g.N, BroadcastOnly: true}, func(nd *clique.Node) {
		got[nd.ID()] = SSSP(nd, g.W[nd.ID()], 0).Dist
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range got {
		if got[v] != want[0][v] {
			t.Errorf("dist(0,%d) = %d, want %d", v, got[v], want[0][v])
		}
	}
	// Same rounds as in the unicast model: the algorithm never used
	// unicast anyway.
	res2, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
		SSSP(nd, g.W[nd.ID()], 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != res2.Stats.Rounds {
		t.Errorf("broadcast model rounds %d != unicast model rounds %d",
			res.Stats.Rounds, res2.Stats.Rounds)
	}
}

func TestBFSRunsInBroadcastCongestedClique(t *testing.T) {
	g := graph.Cycle(10)
	want := graph.BFSDistances(g, 3)
	_, err := clique.Run(clique.Config{N: g.N, BroadcastOnly: true}, func(nd *clique.Node) {
		r := BFS(nd, g.Row(nd.ID()), 3)
		if r.Dist != want[nd.ID()] {
			nd.Fail("dist = %d, want %d", r.Dist, want[nd.ID()])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
