package clique

import (
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBroadcastSum(t *testing.T) {
	const n = 8
	sums := make([]uint64, n)
	res, err := Run(Config{N: n}, func(nd *Node) {
		nd.Broadcast(uint64(nd.ID() + 1))
		nd.Tick()
		total := uint64(nd.ID() + 1)
		for p := 0; p < n; p++ {
			if p == nd.ID() {
				continue
			}
			got := nd.Recv(p)
			if len(got) != 1 {
				nd.Fail("expected 1 word from %d, got %d", p, len(got))
			}
			total += got[0]
		}
		sums[nd.ID()] = total
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(n * (n + 1) / 2)
	for v, s := range sums {
		if s != want {
			t.Errorf("node %d computed sum %d, want %d", v, s, want)
		}
	}
	if res.Stats.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", res.Stats.Rounds)
	}
	if res.Stats.WordsSent != int64(n*(n-1)) {
		t.Errorf("WordsSent = %d, want %d", res.Stats.WordsSent, n*(n-1))
	}
	if res.Stats.MaxPairWords != 1 {
		t.Errorf("MaxPairWords = %d, want 1", res.Stats.MaxPairWords)
	}
}

func TestPointToPointOrdering(t *testing.T) {
	// Node 0 sends two words to node 1 over two rounds with budget 1;
	// order of arrival must match order of sending.
	const n = 3
	var got []uint64
	_, err := Run(Config{N: n}, func(nd *Node) {
		switch nd.ID() {
		case 0:
			nd.Send(1, 42)
			nd.Tick()
			nd.Send(1, 43)
			nd.Tick()
		case 1:
			nd.Tick()
			got = append(got, nd.Recv(0)...)
			nd.Tick()
			got = append(got, nd.Recv(0)...)
		default:
			nd.Tick()
			nd.Tick()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 42 || got[1] != 43 {
		t.Errorf("received %v, want [42 43]", got)
	}
}

func TestBandwidthViolation(t *testing.T) {
	_, err := Run(Config{N: 4, WordsPerPair: 2}, func(nd *Node) {
		if nd.ID() == 0 {
			nd.Send(1, 1, 2, 3) // 3 words > budget 2
		}
		nd.Tick()
	})
	if err == nil || !strings.Contains(err.Error(), "bandwidth exceeded") {
		t.Fatalf("want bandwidth error, got %v", err)
	}
}

func TestMultiWordBudget(t *testing.T) {
	res, err := Run(Config{N: 4, WordsPerPair: 3}, func(nd *Node) {
		nd.Broadcast(1, 2, 3)
		nd.Tick()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxPairWords != 3 {
		t.Errorf("MaxPairWords = %d, want 3", res.Stats.MaxPairWords)
	}
}

func TestSendToSelfRejected(t *testing.T) {
	_, err := Run(Config{N: 2}, func(nd *Node) {
		nd.Send(nd.ID(), 7)
		nd.Tick()
	})
	if err == nil || !strings.Contains(err.Error(), "invalid Send target") {
		t.Fatalf("want self-send error, got %v", err)
	}
}

func TestNodePanicPropagates(t *testing.T) {
	_, err := Run(Config{N: 4}, func(nd *Node) {
		if nd.ID() == 2 {
			panic("boom")
		}
		nd.Tick()
		nd.Tick()
	})
	if err == nil || !strings.Contains(err.Error(), "node 2 panicked: boom") {
		t.Fatalf("want panic error, got %v", err)
	}
}

func TestEarlyReturnNodesDoNotBlockOthers(t *testing.T) {
	// Nodes 1..n-1 return immediately; node 0 runs three more rounds.
	const n = 5
	res, err := Run(Config{N: n}, func(nd *Node) {
		if nd.ID() != 0 {
			return
		}
		for i := 0; i < 3; i++ {
			nd.Tick()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3", res.Stats.Rounds)
	}
}

func TestMaxRounds(t *testing.T) {
	_, err := Run(Config{N: 2, MaxRounds: 5}, func(nd *Node) {
		for {
			nd.Tick()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "MaxRounds") {
		t.Fatalf("want MaxRounds error, got %v", err)
	}
}

func TestRoundCounter(t *testing.T) {
	_, err := Run(Config{N: 2}, func(nd *Node) {
		for i := 0; i < 4; i++ {
			if nd.Round() != i {
				nd.Fail("Round() = %d, want %d", nd.Round(), i)
			}
			nd.Tick()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTranscriptSymmetry(t *testing.T) {
	const n = 4
	res, err := Run(Config{N: n, RecordTranscript: true}, func(nd *Node) {
		// Everyone sends its id to everyone for two rounds.
		for r := 0; r < 2; r++ {
			nd.Broadcast(uint64(nd.ID()*10 + r))
			nd.Tick()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transcripts) != n {
		t.Fatalf("got %d transcripts, want %d", len(res.Transcripts), n)
	}
	for v := 0; v < n; v++ {
		tr := res.Transcripts[v]
		if tr.NodeID != v {
			t.Errorf("transcript %d has NodeID %d", v, tr.NodeID)
		}
		if len(tr.Rounds) != 2 {
			t.Fatalf("node %d transcript has %d rounds, want 2", v, len(tr.Rounds))
		}
		for r := range tr.Rounds {
			for p := 0; p < n; p++ {
				if p == v {
					continue
				}
				sent := tr.Rounds[r].Sent[p]
				recvAtPeer := res.Transcripts[p].Rounds[r].Recv[v]
				if len(sent) != len(recvAtPeer) {
					t.Fatalf("round %d: node %d sent %v to %d, peer recorded %v", r, v, sent, p, recvAtPeer)
				}
				for i := range sent {
					if sent[i] != recvAtPeer[i] {
						t.Fatalf("round %d: transcript mismatch %v vs %v", r, sent, recvAtPeer)
					}
				}
			}
		}
		wantWords := 2 * 2 * (n - 1) // 2 rounds x (sent + recv) x (n-1) peers
		if tr.Words() != wantWords {
			t.Errorf("node %d transcript words = %d, want %d", v, tr.Words(), wantWords)
		}
	}
}

func TestDeterministicStats(t *testing.T) {
	run := func() Stats {
		res, err := Run(Config{N: 6}, func(nd *Node) {
			for r := 0; r < 3; r++ {
				nd.Send((nd.ID()+r+1)%nd.N(), uint64(r))
				nd.Tick()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs produced different stats: %+v vs %+v", a, b)
	}
}

func TestReplayMatchesLiveRun(t *testing.T) {
	const n = 4
	alg := func(nd *Node) {
		// Round 0: broadcast id. Round 1: echo max received id to node 0.
		nd.Broadcast(uint64(nd.ID()))
		nd.Tick()
		max := uint64(nd.ID())
		for p := 0; p < n; p++ {
			if p == nd.ID() {
				continue
			}
			if w := nd.Recv(p); len(w) > 0 && w[0] > max {
				max = w[0]
			}
		}
		if nd.ID() != 0 {
			nd.Send(0, max)
		}
		nd.Tick()
	}
	res, err := Run(Config{N: n, RecordTranscript: true}, alg)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild node 2's inbox from its transcript and replay it.
	tr := res.Transcripts[2]
	inbox := make([][][]uint64, len(tr.Rounds))
	for r := range tr.Rounds {
		inbox[r] = tr.Rounds[r].Recv
	}
	rep, err := Replay(Config{N: n}, 2, alg, inbox)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("replay did not complete")
	}
	if rep.Rounds != len(tr.Rounds) {
		t.Fatalf("replay rounds = %d, want %d", rep.Rounds, len(tr.Rounds))
	}
	for r := range rep.Sent {
		for p := 0; p < n; p++ {
			if p == 2 {
				continue
			}
			want := tr.Rounds[r].Sent[p]
			got := rep.Sent[r][p]
			if len(want) != len(got) {
				t.Fatalf("round %d peer %d: replay sent %v, live sent %v", r, p, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("round %d peer %d: replay sent %v, live sent %v", r, p, got, want)
				}
			}
		}
	}
}

func TestReplayDetectsDivergence(t *testing.T) {
	// An algorithm that sends whatever it received; feed it a tampered
	// inbox and observe the divergent output.
	const n = 3
	alg := func(nd *Node) {
		if nd.ID() == 0 {
			nd.Tick()
			w := nd.Recv(1)
			if len(w) > 0 {
				nd.Send(2, w[0])
			}
			nd.Tick()
		} else {
			if nd.ID() == 1 {
				nd.Send(0, 5)
			}
			nd.Tick()
			nd.Tick()
		}
	}
	inbox := [][][]uint64{
		{nil, {99}, nil}, // tampered: live run would deliver 5
		{nil, nil, nil},
	}
	rep, err := Replay(Config{N: n}, 0, alg, inbox)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sent) < 2 || len(rep.Sent[1][2]) != 1 || rep.Sent[1][2][0] != 99 {
		t.Fatalf("replay sent %v, want 99 forwarded to node 2", rep.Sent)
	}
}

func TestWordsAccounting(t *testing.T) {
	// Property: for any pattern of k words per node per round, the total
	// accounted words equal what was sent.
	f := func(seed uint8) bool {
		n := 3 + int(seed%4)
		pattern := int(seed%3) + 1
		var sent atomic.Int64
		res, err := Run(Config{N: n, WordsPerPair: 3}, func(nd *Node) {
			for r := 0; r < 2; r++ {
				for p := 0; p < n; p++ {
					if p == nd.ID() || (p+r)%pattern != 0 {
						continue
					}
					nd.Send(p, uint64(p))
					sent.Add(1)
				}
				nd.Tick()
			}
		})
		if err != nil {
			return false
		}
		return res.Stats.WordsSent == sent.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWordBits(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := WordBits(c.n); got != c.want {
			t.Errorf("WordBits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPairWordRoundTrip(t *testing.T) {
	f := func(a, b uint8) bool {
		n := 300
		u, v := int(a)%n, int(b)%n
		gu, gv := UnpairWord(PairWord(u, v, n), n)
		return gu == u && gv == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackBitsRoundTrip(t *testing.T) {
	f := func(raw []bool) bool {
		got := UnpackBits(PackBits(raw), len(raw))
		if len(got) != len(raw) {
			return false
		}
		for i := range raw {
			if got[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{N: 0}).Validate(); err == nil {
		t.Error("N=0 accepted")
	}
	if err := (Config{N: 2, WordsPerPair: -1}).Validate(); err == nil {
		t.Error("negative WordsPerPair accepted")
	}
	if err := (Config{N: 2, MaxRounds: -1}).Validate(); err == nil {
		t.Error("negative MaxRounds accepted")
	}
	if err := (Config{N: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRecvBeforeFirstTick(t *testing.T) {
	_, err := Run(Config{N: 2}, func(nd *Node) {
		if w := nd.Recv(1 - nd.ID()); w != nil {
			nd.Fail("Recv before Tick = %v, want nil", w)
		}
		all := nd.RecvAll()
		if len(all) != 2 {
			nd.Fail("RecvAll length %d", len(all))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastOnlyModelAcceptsBroadcasts(t *testing.T) {
	// A genuine broadcast algorithm runs unchanged in the broadcast
	// congested clique.
	const n = 6
	res, err := Run(Config{N: n, BroadcastOnly: true}, func(nd *Node) {
		nd.Broadcast(uint64(nd.ID()))
		nd.Tick()
		nd.Tick() // a silent round is also legal
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 2 {
		t.Errorf("rounds = %d", res.Stats.Rounds)
	}
}

func TestBroadcastOnlyModelRejectsUnicast(t *testing.T) {
	_, err := Run(Config{N: 4, BroadcastOnly: true}, func(nd *Node) {
		if nd.ID() == 0 {
			nd.Send(1, 7) // point-to-point: illegal here
		}
		nd.Tick()
	})
	if err == nil || !strings.Contains(err.Error(), "broadcast-only") {
		t.Fatalf("want broadcast-only violation, got %v", err)
	}
}

func TestBroadcastOnlyModelRejectsDifferingWords(t *testing.T) {
	_, err := Run(Config{N: 3, BroadcastOnly: true}, func(nd *Node) {
		if nd.ID() == 0 {
			nd.Send(1, 7)
			nd.Send(2, 8) // everyone must get the same words
		}
		nd.Tick()
	})
	if err == nil || !strings.Contains(err.Error(), "broadcast-only") {
		t.Fatalf("want broadcast-only violation, got %v", err)
	}
}

func TestBandwidthScaling(t *testing.T) {
	// Doubling WordsPerPair halves broadcast-heavy round counts: the
	// constant moves between bandwidth and time, as the paper's
	// normalisation discussion says.
	const n, k = 8, 12
	rounds := func(wpp int) int {
		res, err := Run(Config{N: n, WordsPerPair: wpp}, func(nd *Node) {
			words := make([]uint64, k)
			for off := 0; off < k; off += wpp {
				end := off + wpp
				if end > k {
					end = k
				}
				nd.Broadcast(words[off:end]...)
				nd.Tick()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Rounds
	}
	if r1, r2 := rounds(1), rounds(2); r1 != 2*r2 {
		t.Errorf("wpp 1 -> %d rounds, wpp 2 -> %d rounds; want exact halving", r1, r2)
	}
}

func TestConcurrentEngines(t *testing.T) {
	// Two independent simulations running in parallel must not
	// interfere: the engine has no global state.
	done := make(chan Stats, 2)
	for e := 0; e < 2; e++ {
		go func() {
			res, err := Run(Config{N: 6}, func(nd *Node) {
				for r := 0; r < 4; r++ {
					nd.Broadcast(uint64(e*100 + nd.ID()))
					nd.Tick()
				}
			})
			if err != nil {
				t.Error(err)
			}
			done <- res.Stats
		}()
	}
	a, b := <-done, <-done
	if a != b {
		t.Errorf("identical concurrent runs diverged: %+v vs %+v", a, b)
	}
}
