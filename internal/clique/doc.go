// Package clique implements a synchronous congested clique simulator.
//
// The model follows Korhonen and Suomela, "Towards a complexity theory for
// the congested clique" (SPAA 2018), Section 3: n nodes, fully connected,
// computation proceeds in synchronous rounds, and in each round every
// ordered pair of nodes may exchange an O(log n)-bit message. The simulator
// measures messages in words; a word is any uint64 whose value the calling
// algorithm can justify as poly(n)-bounded (a node id, an id pair, an edge
// weight, a counter). Config.WordsPerPair bounds how many words a single
// ordered pair may carry per round; exceeding the budget aborts the run
// with an error, because it means the algorithm does not fit the model.
//
// Algorithms are written in a blocking style: each node executes a
// NodeFunc, queues messages with Send or Broadcast, and calls Tick to
// advance to the next synchronous round. Local computation between Ticks
// is unlimited, matching the model.
//
// How the n node programs are actually scheduled is the job of an
// execution backend (package engine), selected with Config.Backend:
// "goroutine" runs one goroutine per node with a barrier per round, and
// "lockstep" resumes the programs as coroutines on a sharded worker pool
// with reused mailbox buffers. The two are result-identical; lockstep is
// deterministic and much faster at large n. Seed sweeps of one shape
// can run through RunBatch, which batches the runs in a single lockstep
// execution with bit-identical per-run results.
package clique
