package clique

import (
	"fmt"

	"repro/internal/engine"
)

// RunBatch executes len(programs) independent runs of the same network
// shape — one NodeFunc per run, typically the same algorithm over a
// seed sweep — through one batched engine execution. Results and errors
// are indexed by run, and each entry is bit-identical to what a serial
// Run(cfg, programs[r]) would return: same Stats, same Transcripts,
// same canonical violation error. Runs are independent; one run's
// failure does not disturb the others.
//
// On the lockstep backend the batch shares round scheduling, barrier
// bookkeeping, and run-major mailbox storage, so per-round fixed costs
// amortise across the batch; other backends fall back to serial
// execution with the same per-run results. Tracing is per-run by
// nature, so traced configurations also execute serially; phase/op
// span recording (a node-0 sampling concern, not a model output) is
// not wired in batch mode.
func RunBatch(cfg Config, programs []NodeFunc) ([]*Result, []error) {
	batch := len(programs)
	if batch == 0 {
		return nil, nil
	}
	if err := cfg.Validate(); err != nil {
		errs := make([]error, batch)
		for i := range errs {
			errs[i] = err
		}
		return make([]*Result, batch), errs
	}
	cfg = cfg.withDefaults()
	be, err := engine.New(cfg.Backend)
	if err != nil {
		err = fmt.Errorf("clique: %w", err)
		errs := make([]error, batch)
		for i := range errs {
			errs[i] = err
		}
		return make([]*Result, batch), errs
	}
	return engine.RunBatch(be, cfg.engineConfig(), batch, func(run, id int, rt engine.NodeRuntime) {
		nd := &Node{id: id, n: cfg.N, wpp: cfg.WordsPerPair, rt: rt}
		programs[run](nd)
	})
}
