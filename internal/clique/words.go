package clique

import "fmt"

// This file holds the encodings algorithms use to pack structured values
// into O(log n)-bit words. A pair of node ids fits in 2*ceil(log2 n) bits,
// which the model still counts as O(log n); callers that must stay within
// strictly ceil(log2 n) bits per message send the components in separate
// words and pay the constant in rounds instead, exactly as the paper's
// normalisation discussion allows.

// PairWord packs an ordered pair of node ids u, v from an n-node clique
// into a single word u*n + v.
func PairWord(u, v, n int) uint64 {
	if u < 0 || u >= n || v < 0 || v >= n {
		panic(fmt.Sprintf("clique: PairWord(%d, %d) out of range for n = %d", u, v, n))
	}
	return uint64(u)*uint64(n) + uint64(v)
}

// UnpairWord inverts PairWord.
func UnpairWord(w uint64, n int) (u, v int) {
	u = int(w / uint64(n))
	v = int(w % uint64(n))
	if u >= n {
		panic(fmt.Sprintf("clique: UnpairWord(%d) out of range for n = %d", w, n))
	}
	return u, v
}

// PackBits packs a bit vector into words, 64 bits per word, little-endian
// within each word. Note that a packed word carries 64 bits, not O(log n)
// bits; senders must account for the ratio themselves (the helpers in
// package routing do).
func PackBits(bits []bool) []uint64 {
	words := make([]uint64, (len(bits)+63)/64)
	for i, b := range bits {
		if b {
			words[i/64] |= 1 << (i % 64)
		}
	}
	return words
}

// UnpackBits inverts PackBits given the original bit count.
func UnpackBits(words []uint64, n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = words[i/64]&(1<<(i%64)) != 0
	}
	return bits
}

// BoolWord converts a bool to a 0/1 word.
func BoolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
