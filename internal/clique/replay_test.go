package clique

import (
	"strings"
	"testing"
)

func TestReplayRejectsBadArguments(t *testing.T) {
	f := func(nd *Node) { nd.Tick() }

	if _, err := Replay(Config{N: 0}, 0, f, nil); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Replay(Config{N: 3}, 3, f, nil); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("node id out of range: err = %v", err)
	}
	if _, err := Replay(Config{N: 3}, -1, f, nil); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("negative node id: err = %v", err)
	}
	// A round whose stub list is the wrong width.
	badWidth := [][][]uint64{{nil, nil}}
	if _, err := Replay(Config{N: 3}, 0, f, badWidth); err == nil || !strings.Contains(err.Error(), "entries") {
		t.Errorf("wrong inbox width: err = %v", err)
	}
	// A round addressing the replayed node to itself.
	selfAddr := [][][]uint64{{{7}, nil, nil}}
	if _, err := Replay(Config{N: 3}, 0, f, selfAddr); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Errorf("self-addressed inbox: err = %v", err)
	}
}

func TestReplayCutsOffRunawayNode(t *testing.T) {
	// The node ticks forever; the script has 2 rounds, so the engine cuts
	// the run at the len(inbox)+1 grace limit and reports the node as
	// never having finished.
	inbox := [][][]uint64{
		{nil, {1}, nil},
		{nil, {2}, nil},
	}
	_, err := Replay(Config{N: 3}, 0, func(nd *Node) {
		for {
			nd.Tick()
		}
	}, inbox)
	if err == nil || !strings.Contains(err.Error(), "MaxRounds") {
		t.Fatalf("runaway replay: err = %v, want the MaxRounds cut-off", err)
	}
}

func TestReplayEmptyScript(t *testing.T) {
	// With no scripted rounds, a node that returns immediately completes
	// with zero rounds.
	res, err := Replay(Config{N: 2}, 0, func(nd *Node) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 0 {
		t.Errorf("got completed=%v rounds=%d, want true/0", res.Completed, res.Rounds)
	}
}

func TestReplayEchoDeterminism(t *testing.T) {
	// An echo node resends whatever the script feeds it; the recorded
	// sends must equal the script, shifted one round.
	const n = 4
	inbox := [][][]uint64{
		{nil, {10}, {20}, {30}},
		{nil, {11}, nil, nil},
	}
	res, err := Replay(Config{N: n, WordsPerPair: 4}, 0, func(nd *Node) {
		nd.Tick()
		for r := 0; r < 2; r++ {
			var sum uint64
			for p := 1; p < n; p++ {
				for _, w := range nd.Recv(p) {
					sum += w
				}
			}
			nd.Send(1, sum)
			nd.Tick()
		}
	}, inbox)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 3 {
		t.Fatalf("completed=%v rounds=%d, want true/3", res.Completed, res.Rounds)
	}
	if got := res.Sent[1][1]; len(got) != 1 || got[0] != 60 {
		t.Errorf("round 1 echo = %v, want [60]", got)
	}
	if got := res.Sent[2][1]; len(got) != 1 || got[0] != 11 {
		t.Errorf("round 2 echo = %v, want [11]", got)
	}
}

// TestReplayOnBothBackends runs the same replay under both execution
// engines; the Theorem 3 verifier must not care how nodes are scheduled.
func TestReplayOnBothBackends(t *testing.T) {
	const n = 4
	alg := func(nd *Node) {
		nd.Broadcast(uint64(nd.ID() + 1))
		nd.Tick()
		var sum uint64
		for p := 0; p < n; p++ {
			if p == nd.ID() {
				continue
			}
			if w := nd.Recv(p); len(w) == 1 {
				sum += w[0]
			}
		}
		if nd.ID() != 0 {
			nd.Send(0, sum)
		}
		nd.Tick()
	}
	var results []*ReplayResult
	for _, backend := range Backends() {
		res, err := Run(Config{N: n, RecordTranscript: true, Backend: backend}, alg)
		if err != nil {
			t.Fatalf("%s live run: %v", backend, err)
		}
		tr := res.Transcripts[2]
		inbox := make([][][]uint64, len(tr.Rounds))
		for r := range tr.Rounds {
			inbox[r] = tr.Rounds[r].Recv
		}
		rep, err := Replay(Config{N: n, Backend: backend}, 2, alg, inbox)
		if err != nil {
			t.Fatalf("%s replay: %v", backend, err)
		}
		if !rep.Completed || rep.Rounds != 2 {
			t.Fatalf("%s replay: completed=%v rounds=%d", backend, rep.Completed, rep.Rounds)
		}
		results = append(results, rep)
	}
	a, b := results[0], results[1]
	for r := range a.Sent {
		for p := range a.Sent[r] {
			if len(a.Sent[r][p]) != len(b.Sent[r][p]) {
				t.Fatalf("round %d peer %d: backends replayed different sends", r, p)
			}
			for i := range a.Sent[r][p] {
				if a.Sent[r][p][i] != b.Sent[r][p][i] {
					t.Fatalf("round %d peer %d: backends replayed different words", r, p)
				}
			}
		}
	}
}

func TestConfigBackendValidation(t *testing.T) {
	if err := (Config{N: 2, Backend: "lockstep"}).Validate(); err != nil {
		t.Errorf("lockstep rejected: %v", err)
	}
	if err := (Config{N: 2, Backend: "quantum"}).Validate(); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("bogus backend accepted: %v", err)
	}
	if _, err := Run(Config{N: 2, Backend: "quantum"}, func(nd *Node) {}); err == nil {
		t.Error("Run accepted a bogus backend")
	}
}
