package clique

import (
	"testing"
)

func TestBoolWord(t *testing.T) {
	if BoolWord(true) != 1 || BoolWord(false) != 0 {
		t.Errorf("BoolWord: got (%d, %d), want (1, 0)", BoolWord(true), BoolWord(false))
	}
}

func TestPairWordRange(t *testing.T) {
	n := 10
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			w := PairWord(u, v, n)
			if w >= uint64(n*n) {
				t.Fatalf("PairWord(%d, %d, %d) = %d escapes [0, n^2)", u, v, n, w)
			}
			gu, gv := UnpairWord(w, n)
			if gu != u || gv != v {
				t.Fatalf("round trip (%d, %d) -> %d -> (%d, %d)", u, v, w, gu, gv)
			}
		}
	}
}

func TestPairWordPanicsOutOfRange(t *testing.T) {
	cases := []struct{ u, v int }{{-1, 0}, {0, -1}, {5, 0}, {0, 5}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PairWord(%d, %d, 5) did not panic", c.u, c.v)
				}
			}()
			PairWord(c.u, c.v, 5)
		}()
	}
}

func TestUnpairWordPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UnpairWord(25, 5) did not panic")
		}
	}()
	UnpairWord(25, 5) // u component would be 5, out of range for n=5
}

func TestPackBitsBoundaries(t *testing.T) {
	for _, size := range []int{0, 1, 63, 64, 65, 128, 130} {
		bits := make([]bool, size)
		for i := range bits {
			bits[i] = i%3 == 0
		}
		words := PackBits(bits)
		if want := (size + 63) / 64; len(words) != want {
			t.Errorf("size %d: %d words, want %d", size, len(words), want)
		}
		got := UnpackBits(words, size)
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("size %d: bit %d flipped", size, i)
			}
		}
	}
}

func TestPackBitsWordEfficiency(t *testing.T) {
	// A packed word really carries 64 bits: all-ones must set every bit.
	bits := make([]bool, 64)
	for i := range bits {
		bits[i] = true
	}
	words := PackBits(bits)
	if len(words) != 1 || words[0] != ^uint64(0) {
		t.Errorf("PackBits(64 ones) = %#x, want all-ones word", words)
	}
}
