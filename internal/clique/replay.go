package clique

import "fmt"

// ReplayResult reports what a single node did when driven against a
// scripted sequence of incoming messages.
type ReplayResult struct {
	// Sent[r][p] are the words the node sent to peer p in round r.
	Sent [][][]uint64
	// Rounds is the number of rounds the node completed before
	// returning or before the script plus one grace round ran out.
	Rounds int
	// Completed reports whether the node function returned normally.
	Completed bool
}

// Replay runs the node function f as node id of an n-node clique whose
// other n-1 nodes are scripted stubs: in round r, stub p sends exactly
// inbox[r][p] to node id and nothing else. This isolates one node's
// behaviour, which is what step (3) of Theorem 3's normal-form verifier
// needs: node v locally re-executes the algorithm A against the received
// half of a communication transcript and compares what A would have sent.
//
// inbox[r][id] must be empty (a node does not message itself). f must
// terminate within len(inbox)+1 rounds; if it keeps ticking after the
// script is exhausted it receives nothing and the run is cut off.
func Replay(cfg Config, id int, f NodeFunc, inbox [][][]uint64) (*ReplayResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if id < 0 || id >= cfg.N {
		return nil, fmt.Errorf("clique: replay node id %d out of range [0,%d)", id, cfg.N)
	}
	for r := range inbox {
		if len(inbox[r]) != cfg.N {
			return nil, fmt.Errorf("clique: replay inbox round %d has %d entries, want %d", r, len(inbox[r]), cfg.N)
		}
		if len(inbox[r][id]) != 0 {
			return nil, fmt.Errorf("clique: replay inbox round %d addresses node %d to itself", r, id)
		}
	}
	cfg.RecordTranscript = true
	if cfg.MaxRounds == 0 || cfg.MaxRounds > len(inbox)+1 {
		cfg.MaxRounds = len(inbox) + 1
	}

	completed := false
	rounds := 0
	res, err := Run(cfg, func(nd *Node) {
		if nd.ID() != id {
			for r := 0; r < len(inbox); r++ {
				words := inbox[r][nd.ID()]
				if len(words) > 0 {
					nd.Send(id, words...)
				}
				nd.Tick()
			}
			return
		}
		f(nd)
		completed = true
		rounds = nd.Round()
	})
	// Exceeding MaxRounds after the script ran out is the documented
	// cut-off, not a caller error.
	if err != nil && !completed {
		return nil, err
	}

	out := &ReplayResult{Completed: completed, Rounds: rounds}
	if res.Transcripts != nil && id < len(res.Transcripts) {
		tr := res.Transcripts[id]
		for r := 0; r < rounds && r < len(tr.Rounds); r++ {
			out.Sent = append(out.Sent, tr.Rounds[r].Sent)
		}
	}
	return out, nil
}
