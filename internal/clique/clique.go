package clique

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/trace"
)

// DefaultMaxRounds aborts runaway algorithms; any real congested clique
// algorithm in this repository terminates within O(n) rounds for the
// instance sizes we simulate.
const DefaultMaxRounds = engine.DefaultMaxRounds

// MaxN and MaxWordsPerPair bound a run's shape; see package engine.
const (
	MaxN            = engine.MaxN
	MaxWordsPerPair = engine.MaxWordsPerPair
)

// Config describes a simulated congested clique network.
type Config struct {
	// N is the number of nodes. Must be at least 1.
	N int

	// WordsPerPair is the per-round, per-ordered-pair message budget in
	// words. Zero means 1, the strict model. Larger values model a larger
	// constant inside the O(log n) bandwidth; the paper notes constants
	// can be moved between bandwidth and round count.
	WordsPerPair int

	// MaxRounds aborts the run after this many rounds. Zero means
	// DefaultMaxRounds.
	MaxRounds int

	// RecordTranscript enables per-node communication transcripts, the
	// objects Theorem 3 of the paper uses as nondeterministic
	// certificates. Recording costs memory proportional to the total
	// traffic, so it is off by default.
	RecordTranscript bool

	// BroadcastOnly switches to the *broadcast* congested clique of the
	// paper's related-work discussion: each round, every node must send
	// the same words to every other node (or nothing at all). The
	// engine verifies the restriction at each exchange; violating it
	// fails the run. Lower bounds are known for this weaker model
	// (Drucker et al. [19]).
	BroadcastOnly bool

	// Backend names the execution engine: "goroutine" (the default) or
	// "lockstep". Backends are model-equivalent; see package engine.
	Backend string

	// Tracer, if non-nil, receives the run's trace: the engine reports
	// every exchanged round to it, and — when it also implements
	// trace.SpanRecorder — node 0's phase and op spans are recorded
	// through it. Nil (the default) disables tracing entirely.
	Tracer trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.WordsPerPair == 0 {
		c.WordsPerPair = 1
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = DefaultMaxRounds
	}
	return c
}

// Validate reports whether the configuration is usable. The model
// fields are checked by the engine config they translate to (one copy
// of the bounds and error strings); backend naming is checked here.
func (c Config) Validate() error {
	if err := c.engineConfig().Validate(); err != nil {
		return err
	}
	if _, err := engine.New(c.Backend); err != nil {
		return fmt.Errorf("clique: %w", err)
	}
	return nil
}

// engineConfig translates the model fields for package engine.
func (c Config) engineConfig() engine.Config {
	return engine.Config{
		N:                c.N,
		WordsPerPair:     c.WordsPerPair,
		MaxRounds:        c.MaxRounds,
		RecordTranscript: c.RecordTranscript,
		BroadcastOnly:    c.BroadcastOnly,
		Tracer:           c.Tracer,
	}
}

// WordBits returns the number of bits the model charges for one word on an
// n-node clique: ceil(log2 n), with a minimum of 1.
func WordBits(n int) int { return engine.WordBits(n) }

// NodeFunc is the algorithm run by every node. The same function runs at
// all nodes (the model is uniform); per-node behaviour comes from
// Node.ID() and from whatever input the surrounding closure captured.
type NodeFunc func(nd *Node)

// Stats aggregates the cost of a run in model terms; see engine.Stats.
type Stats = engine.Stats

// Transcript is the full communication record of a single node, the
// certificate object of Theorem 3; see engine.Transcript.
type Transcript = engine.Transcript

// TranscriptRound records one round of one node's communication.
type TranscriptRound = engine.TranscriptRound

// Result carries everything a completed run produced besides the
// algorithm's own outputs (which the caller collects via its NodeFunc
// closure).
type Result = engine.Result

// Run executes f at every node of an N-node congested clique and returns
// the aggregate cost of the execution. Outputs are collected by the
// caller's closure. Run returns an error if any node exceeded the message
// budget, panicked, or the round limit was hit.
func Run(cfg Config, f NodeFunc) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	be, err := engine.New(cfg.Backend)
	if err != nil {
		return nil, fmt.Errorf("clique: %w", err)
	}
	rec, _ := cfg.Tracer.(trace.SpanRecorder)
	if rec == nil && engine.TraceForced() {
		// CLIQUE_FORCE_TRACE: drive the span-recording paths with a
		// throwaway collector (CI runs tests this way under -race).
		rec = trace.NewCollector("forced", cfg.N, cfg.WordsPerPair)
	}
	return be.Run(cfg.engineConfig(), func(id int, rt engine.NodeRuntime) {
		nd := &Node{id: id, n: cfg.N, wpp: cfg.WordsPerPair, rt: rt}
		if id == 0 {
			// Spans are recorded from node 0 only: the model is uniform,
			// so node 0's phase structure is the run's phase structure.
			nd.tr = rec
		}
		f(nd)
	})
}

// Node is the per-node handle passed to a NodeFunc. All methods must be
// called only from within that node's program.
type Node struct {
	id  int
	n   int
	wpp int
	rt  engine.NodeRuntime
	// completed counts rounds this node has finished with Tick.
	completed int
	// tr records phase/op spans; non-nil only at node 0 of a traced run.
	tr trace.SpanRecorder
}

// ID returns this node's identifier in 0..N-1. The paper uses 1..n; the
// shift is immaterial and 0-based ids index Go slices directly.
func (nd *Node) ID() int { return nd.id }

// N returns the number of nodes in the clique.
func (nd *Node) N() int { return nd.n }

// Round returns the number of completed rounds, i.e. the index of the
// round currently being prepared.
func (nd *Node) Round() int { return nd.completed }

// WordsPerPair returns the per-round per-ordered-pair word budget.
func (nd *Node) WordsPerPair() int { return nd.wpp }

// Send queues words for delivery to node `to` at the end of the current
// round. It aborts the run if the budget for the (nd, to) pair would be
// exceeded or if `to` is out of range or equal to the sender: a node
// talking to itself needs no network.
func (nd *Node) Send(to int, words ...uint64) {
	nd.SendWords(to, words)
}

// SendWords is the batched form of Send: it queues an existing slice
// without the varargs indirection, so hot loops that reuse a staging
// buffer allocate nothing per call.
func (nd *Node) SendWords(to int, words []uint64) {
	if to < 0 || to >= nd.n || to == nd.id {
		panic(engine.Violation{Err: fmt.Errorf("clique: node %d: invalid Send target %d", nd.id, to)})
	}
	nd.rt.Send(nd.id, nd.completed, to, words)
}

// SendBuf reserves k words on the link to node `to` and returns the
// engine's mailbox storage for the caller to fill in place — the
// zero-copy send path. The budget is charged at reservation exactly as
// Send would charge it; the returned slice is writable until the next
// Tick and must be fully written.
func (nd *Node) SendBuf(to, k int) []uint64 {
	if to < 0 || to >= nd.n || to == nd.id {
		panic(engine.Violation{Err: fmt.Errorf("clique: node %d: invalid Send target %d", nd.id, to)})
	}
	if k < 0 {
		panic(engine.Violation{Err: fmt.Errorf("clique: node %d: negative SendBuf size %d", nd.id, k)})
	}
	return nd.rt.SendBuf(nd.id, nd.completed, to, k)
}

// Broadcast queues the same words for every other node. It consumes
// len(words) of the budget on each outgoing link.
func (nd *Node) Broadcast(words ...uint64) {
	nd.BroadcastWords(words)
}

// BroadcastWords is the batched form of Broadcast: it queues an
// existing slice on every outgoing link without the varargs
// indirection. The engine copies straight from the caller's slice into
// each link with no intermediate buffer.
func (nd *Node) BroadcastWords(words []uint64) {
	nd.rt.Broadcast(nd.id, nd.completed, words)
}

// BroadcastBuf returns a reusable k-word staging buffer to fill — the
// allocation-free broadcast path for callers that would otherwise
// build an argument slice per call. The filled words are delivered by
// one fused Broadcast at the node's next send operation or Tick, with
// exactly Broadcast's budget checks and ordering (later Sends of the
// same round queue after them). The buffer must be fully written
// before that point and is invalid after.
func (nd *Node) BroadcastBuf(k int) []uint64 {
	if k < 0 {
		panic(engine.Violation{Err: fmt.Errorf("clique: node %d: negative BroadcastBuf size %d", nd.id, k)})
	}
	return nd.rt.BroadcastBuf(nd.id, nd.completed, k)
}

// Tick completes the current round: all queued messages across the whole
// network are exchanged, and Tick returns once every node has arrived at
// the barrier. After Tick, Recv reports the words received in the round
// that just completed.
func (nd *Node) Tick() {
	nd.rt.Barrier(nd.id)
	nd.completed++
}

// Recv returns the words received from node `from` in the most recently
// completed round, or nil if none. The returned slice is owned by the
// engine and must not be modified; it remains valid until the next Tick.
func (nd *Node) Recv(from int) []uint64 {
	if from < 0 || from >= nd.n || from == nd.id {
		panic(engine.Violation{Err: fmt.Errorf("clique: node %d: invalid Recv source %d", nd.id, from)})
	}
	if nd.completed == 0 {
		return nil
	}
	return nd.rt.Recv(nd.id, from)
}

// RecvInto appends the words received from node `from` in the most
// recently completed round to buf and returns the result. Unlike Recv,
// the returned memory is caller-owned and survives Tick, so multi-round
// collectives can accumulate streams into one reused buffer.
func (nd *Node) RecvInto(from int, buf []uint64) []uint64 {
	if from < 0 || from >= nd.n || from == nd.id {
		panic(engine.Violation{Err: fmt.Errorf("clique: node %d: invalid Recv source %d", nd.id, from)})
	}
	if nd.completed == 0 {
		return buf
	}
	return nd.rt.RecvInto(nd.id, from, buf)
}

// RecvAll returns the full inbox of the most recently completed round,
// indexed by sender (the entry at the node's own index is empty). The
// returned slices are engine-owned; see Recv.
func (nd *Node) RecvAll() [][]uint64 {
	if nd.completed == 0 {
		return make([][]uint64, nd.n)
	}
	return nd.rt.RecvAll(nd.id)
}

// Fail aborts the entire run with an algorithm-level error, e.g. when a
// node detects its input violates a documented precondition.
func (nd *Node) Fail(format string, args ...any) {
	panic(engine.Violation{Err: fmt.Errorf("clique: node %d: %s", nd.id, fmt.Sprintf(format, args...))})
}

// TracePhase opens a named algorithm phase span and returns its closer.
// On an untraced run (or any node but 0) it returns the shared no-op
// closure, so phase marks cost a nil check. Algorithms normally call
// this through trace.Phase, which degrades gracefully for Endpoint
// implementations without tracing support.
func (nd *Node) TracePhase(name string) func() {
	if nd.tr == nil {
		return trace.Nop
	}
	end := nd.tr.StartSpan(trace.KindPhase, name, nd.completed, 0)
	return func() { end(nd.completed) }
}

// TraceOp opens a collective-operation span carrying `words` payload
// words; see TracePhase. Collectives call this through trace.Op.
func (nd *Node) TraceOp(name string, words int) func() {
	if nd.tr == nil {
		return trace.Nop
	}
	end := nd.tr.StartSpan(trace.KindOp, name, nd.completed, int64(words))
	return func() { end(nd.completed) }
}

// Endpoint is the node-side API every congested clique algorithm is
// written against. The real engine's *Node implements it, and so does
// the virtual-clique simulator's node (package virtual); algorithms
// written against Endpoint therefore run unchanged inside a simulated
// clique, which is exactly the simulation argument of Theorem 10 of the
// paper.
type Endpoint interface {
	// ID returns this node's identifier in 0..N-1.
	ID() int
	// N returns the number of nodes in the clique.
	N() int
	// Round returns the number of completed rounds.
	Round() int
	// WordsPerPair returns the per-round per-ordered-pair word budget.
	WordsPerPair() int
	// Send queues words for delivery to node `to` this round.
	Send(to int, words ...uint64)
	// SendWords queues an existing slice for node `to` (batched Send).
	SendWords(to int, words []uint64)
	// SendBuf reserves k words on the link to `to` and returns the
	// mailbox storage to fill in place (zero-copy Send).
	SendBuf(to, k int) []uint64
	// Broadcast queues the same words for every other node.
	Broadcast(words ...uint64)
	// BroadcastWords queues an existing slice on every outgoing link
	// (batched Broadcast).
	BroadcastWords(words []uint64)
	// BroadcastBuf reserves k words on every outgoing link and returns
	// one buffer to fill (zero-copy Broadcast); the words replicate at
	// the next send operation or Tick.
	BroadcastBuf(k int) []uint64
	// Tick completes the current round.
	Tick()
	// Recv returns the words received from `from` in the last round.
	Recv(from int) []uint64
	// RecvInto appends the words received from `from` in the last round
	// to buf and returns caller-owned memory.
	RecvInto(from int, buf []uint64) []uint64
	// Fail aborts the run with an algorithm-level error.
	Fail(format string, args ...any)
}

var _ Endpoint = (*Node)(nil)

// Backends lists the available execution backend names.
func Backends() []string { return engine.Names() }

// DefaultBackend is the backend an empty Config.Backend selects.
const DefaultBackend = engine.DefaultBackend
