// Package clique implements a synchronous congested clique simulator.
//
// The model follows Korhonen and Suomela, "Towards a complexity theory for
// the congested clique" (SPAA 2018), Section 3: n nodes, fully connected,
// computation proceeds in synchronous rounds, and in each round every
// ordered pair of nodes may exchange an O(log n)-bit message. The simulator
// measures messages in words; a word is any uint64 whose value the calling
// algorithm can justify as poly(n)-bounded (a node id, an id pair, an edge
// weight, a counter). Config.WordsPerPair bounds how many words a single
// ordered pair may carry per round; exceeding the budget aborts the run
// with an error, because it means the algorithm does not fit the model.
//
// Algorithms are written in a blocking style: each node runs its own
// goroutine executing a NodeFunc, queues messages with Send or Broadcast,
// and calls Tick to advance to the next synchronous round. Local
// computation between Ticks is unlimited, matching the model.
package clique

import (
	"fmt"
	"math/bits"
	"sync"
)

// DefaultMaxRounds aborts runaway algorithms; any real congested clique
// algorithm in this repository terminates within O(n) rounds for the
// instance sizes we simulate.
const DefaultMaxRounds = 1 << 20

// Config describes a simulated congested clique network.
type Config struct {
	// N is the number of nodes. Must be at least 1.
	N int

	// WordsPerPair is the per-round, per-ordered-pair message budget in
	// words. Zero means 1, the strict model. Larger values model a larger
	// constant inside the O(log n) bandwidth; the paper notes constants
	// can be moved between bandwidth and round count.
	WordsPerPair int

	// MaxRounds aborts the run after this many rounds. Zero means
	// DefaultMaxRounds.
	MaxRounds int

	// RecordTranscript enables per-node communication transcripts, the
	// objects Theorem 3 of the paper uses as nondeterministic
	// certificates. Recording costs memory proportional to the total
	// traffic, so it is off by default.
	RecordTranscript bool

	// BroadcastOnly switches to the *broadcast* congested clique of the
	// paper's related-work discussion: each round, every node must send
	// the same words to every other node (or nothing at all). The
	// engine verifies the restriction at each exchange; violating it
	// fails the run. Lower bounds are known for this weaker model
	// (Drucker et al. [19]).
	BroadcastOnly bool
}

func (c Config) withDefaults() Config {
	if c.WordsPerPair == 0 {
		c.WordsPerPair = 1
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = DefaultMaxRounds
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("clique: config N = %d, need N >= 1", c.N)
	}
	if c.WordsPerPair < 0 {
		return fmt.Errorf("clique: config WordsPerPair = %d, need >= 0", c.WordsPerPair)
	}
	if c.MaxRounds < 0 {
		return fmt.Errorf("clique: config MaxRounds = %d, need >= 0", c.MaxRounds)
	}
	return nil
}

// WordBits returns the number of bits the model charges for one word on an
// n-node clique: ceil(log2 n), with a minimum of 1.
func WordBits(n int) int {
	if n <= 2 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// NodeFunc is the algorithm run by every node. The same function runs at
// all nodes (the model is uniform); per-node behaviour comes from
// Node.ID() and from whatever input the surrounding closure captured.
type NodeFunc func(nd *Node)

// Stats aggregates the cost of a run in model terms.
type Stats struct {
	// Rounds is the number of synchronous rounds executed, i.e. the
	// model's time complexity of this execution.
	Rounds int

	// WordsSent is the total number of words carried by all links over
	// the whole run.
	WordsSent int64

	// MaxPairWords is the largest number of words any single ordered
	// pair carried in any single round. It never exceeds WordsPerPair.
	MaxPairWords int

	// BitsSent is WordsSent times WordBits(n): the total communication
	// volume in model bits.
	BitsSent int64
}

// Transcript is the full communication record of a single node: for each
// round, the words it sent to and received from every peer. This is the
// certificate object of Theorem 3 (normal form for nondeterministic
// algorithms).
type Transcript struct {
	// NodeID is the node this transcript belongs to.
	NodeID int
	// Rounds[r].Sent[p] are the words sent to peer p in round r;
	// Rounds[r].Recv[p] are the words received from peer p.
	Rounds []TranscriptRound
}

// TranscriptRound records one round of one node's communication.
type TranscriptRound struct {
	Sent [][]uint64
	Recv [][]uint64
}

// Words returns the total number of words (sent plus received) recorded in
// the transcript. Theorem 3 bounds this by O(T(n) * n); multiplying by
// WordBits(n) gives the O(T(n) n log n) label size of the normal form.
func (t *Transcript) Words() int {
	total := 0
	for _, r := range t.Rounds {
		for _, s := range r.Sent {
			total += len(s)
		}
		for _, rc := range r.Recv {
			total += len(rc)
		}
	}
	return total
}

// Result carries everything a completed run produced besides the
// algorithm's own outputs (which the caller collects via its NodeFunc
// closure).
type Result struct {
	Stats Stats
	// Transcripts is non-nil only if Config.RecordTranscript was set;
	// it is indexed by node id.
	Transcripts []*Transcript
}

// engineAbort is the sentinel panic value used to unwind node goroutines
// when the run is cancelled (violation in some node, or MaxRounds hit).
type engineAbort struct{}

// violation records a model violation raised by node code via panic; the
// engine converts it into the run's error.
type violation struct{ err error }

// engine is the shared state of one simulated network.
type engine struct {
	cfg Config
	n   int

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	active  int
	round   int
	err     error

	// outbox[from][to] and inbox[to][from] hold the words queued /
	// delivered in the current round.
	outbox [][][]uint64
	inbox  [][][]uint64

	stats       Stats
	transcripts []*Transcript
}

// Run executes f at every node of an N-node congested clique and returns
// the aggregate cost of the execution. Outputs are collected by the
// caller's closure. Run returns an error if any node exceeded the message
// budget, panicked, or the round limit was hit.
func Run(cfg Config, f NodeFunc) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := cfg.N

	e := &engine{cfg: cfg, n: n, active: n}
	e.cond = sync.NewCond(&e.mu)
	e.outbox = newMailbox(n)
	e.inbox = newMailbox(n)
	if cfg.RecordTranscript {
		e.transcripts = make([]*Transcript, n)
		for v := range e.transcripts {
			e.transcripts[v] = &Transcript{NodeID: v}
		}
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		nd := &Node{id: v, e: e}
		go func() {
			defer wg.Done()
			defer e.leave(nd)
			defer func() {
				r := recover()
				switch r := r.(type) {
				case nil:
				case engineAbort:
					// Another node failed; unwind quietly.
				case violation:
					e.fail(r.err)
				default:
					e.fail(fmt.Errorf("clique: node %d panicked: %v", nd.id, r))
				}
			}()
			f(nd)
		}()
	}
	wg.Wait()

	res := &Result{Stats: e.stats, Transcripts: e.transcripts}
	res.Stats.BitsSent = res.Stats.WordsSent * int64(WordBits(n))
	return res, e.err
}

func newMailbox(n int) [][][]uint64 {
	m := make([][][]uint64, n)
	for i := range m {
		m[i] = make([][]uint64, n)
	}
	return m
}

// fail records the first error and wakes all waiters.
func (e *engine) fail(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err == nil {
		e.err = err
	}
	e.cond.Broadcast()
}

// leave deregisters a node whose function has returned. If it was the
// last straggler of the current barrier, the round completes without it.
func (e *engine) leave(nd *Node) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.active--
	if e.active > 0 && e.arrived == e.active && e.err == nil {
		e.exchangeLocked()
	}
}

// barrier is called by Node.Tick. It blocks until all active nodes have
// arrived, at which point the last arrival performs the message exchange.
func (e *engine) barrier(nd *Node) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		panic(engineAbort{})
	}
	e.arrived++
	if e.arrived == e.active {
		e.exchangeLocked()
		return
	}
	myRound := e.round
	for e.round == myRound && e.err == nil {
		e.cond.Wait()
	}
	if e.err != nil {
		panic(engineAbort{})
	}
}

// exchangeLocked delivers all queued messages, updates statistics and
// transcripts, advances the round counter, and releases the barrier.
// Callers must hold e.mu.
func (e *engine) exchangeLocked() {
	if e.cfg.BroadcastOnly && e.err == nil {
		if from, to := e.findBroadcastViolation(); from >= 0 {
			e.err = fmt.Errorf(
				"clique: node %d round %d: broadcast-only model violated (message to %d differs from the rest)",
				from, e.round, to)
		}
	}
	e.inbox, e.outbox = e.outbox, e.inbox
	// inbox now holds what was sent: inbox[from][to]. Transpose view is
	// handled at Recv time by indexing inbox[from][to] with the reader
	// as `to`; to keep Recv O(1) we instead physically transpose here.
	// Transposing n^2 slice headers per round is cheap relative to the
	// simulated work.
	for from := 0; from < e.n; from++ {
		row := e.inbox[from]
		for to := from + 1; to < e.n; to++ {
			row[to], e.inbox[to][from] = e.inbox[to][from], row[to]
		}
	}
	// After the swap loop above, inbox[v][p] holds the words p sent to
	// v. Clear the outbox for the next round.
	for from := range e.outbox {
		row := e.outbox[from]
		for to := range row {
			row[to] = nil
		}
	}

	maxPair := 0
	var words int64
	for v := 0; v < e.n; v++ {
		for p := 0; p < e.n; p++ {
			w := len(e.inbox[v][p])
			words += int64(w)
			if w > maxPair {
				maxPair = w
			}
		}
	}
	e.stats.WordsSent += words
	if maxPair > e.stats.MaxPairWords {
		e.stats.MaxPairWords = maxPair
	}

	if e.transcripts != nil {
		for v := 0; v < e.n; v++ {
			sent := make([][]uint64, e.n)
			recv := make([][]uint64, e.n)
			for p := 0; p < e.n; p++ {
				recv[p] = append([]uint64(nil), e.inbox[v][p]...)
				sent[p] = append([]uint64(nil), e.inbox[p][v]...)
			}
			e.transcripts[v].Rounds = append(e.transcripts[v].Rounds,
				TranscriptRound{Sent: sent, Recv: recv})
		}
	}

	e.round++
	e.stats.Rounds = e.round
	if e.round > e.cfg.MaxRounds && e.err == nil {
		e.err = fmt.Errorf("clique: exceeded MaxRounds = %d", e.cfg.MaxRounds)
	}
	e.arrived = 0
	e.cond.Broadcast()
}

// Node is the per-node handle passed to a NodeFunc. All methods must be
// called only from that node's goroutine.
type Node struct {
	id int
	e  *engine
	// completed counts rounds this node has finished with Tick.
	completed int
}

// ID returns this node's identifier in 0..N-1. The paper uses 1..n; the
// shift is immaterial and 0-based ids index Go slices directly.
func (nd *Node) ID() int { return nd.id }

// N returns the number of nodes in the clique.
func (nd *Node) N() int { return nd.e.n }

// Round returns the number of completed rounds, i.e. the index of the
// round currently being prepared.
func (nd *Node) Round() int { return nd.completed }

// WordsPerPair returns the per-round per-ordered-pair word budget.
func (nd *Node) WordsPerPair() int { return nd.e.cfg.WordsPerPair }

// Send queues words for delivery to node `to` at the end of the current
// round. It aborts the run if the budget for the (nd, to) pair would be
// exceeded or if `to` is out of range or equal to the sender: a node
// talking to itself needs no network.
func (nd *Node) Send(to int, words ...uint64) {
	if to < 0 || to >= nd.e.n || to == nd.id {
		panic(violation{fmt.Errorf("clique: node %d: invalid Send target %d", nd.id, to)})
	}
	box := nd.e.outbox[nd.id]
	if len(box[to])+len(words) > nd.e.cfg.WordsPerPair {
		panic(violation{fmt.Errorf(
			"clique: node %d round %d: bandwidth exceeded sending %d words to %d (budget %d words/pair/round)",
			nd.id, nd.completed, len(box[to])+len(words), to, nd.e.cfg.WordsPerPair)})
	}
	box[to] = append(box[to], words...)
}

// Broadcast queues the same words for every other node. It consumes
// len(words) of the budget on each outgoing link.
func (nd *Node) Broadcast(words ...uint64) {
	for to := 0; to < nd.e.n; to++ {
		if to != nd.id {
			nd.Send(to, words...)
		}
	}
}

// Tick completes the current round: all queued messages across the whole
// network are exchanged, and Tick returns once every node has arrived at
// the barrier. After Tick, Recv reports the words received in the round
// that just completed.
func (nd *Node) Tick() {
	nd.e.barrier(nd)
	nd.completed++
}

// Recv returns the words received from node `from` in the most recently
// completed round, or nil if none. The returned slice is owned by the
// engine and must not be modified; it remains valid until the next Tick.
func (nd *Node) Recv(from int) []uint64 {
	if from < 0 || from >= nd.e.n || from == nd.id {
		panic(violation{fmt.Errorf("clique: node %d: invalid Recv source %d", nd.id, from)})
	}
	if nd.completed == 0 {
		return nil
	}
	return nd.e.inbox[nd.id][from]
}

// RecvAll returns the full inbox of the most recently completed round,
// indexed by sender (the entry at the node's own index is nil). The
// returned slices are engine-owned; see Recv.
func (nd *Node) RecvAll() [][]uint64 {
	if nd.completed == 0 {
		return make([][]uint64, nd.e.n)
	}
	return nd.e.inbox[nd.id]
}

// Fail aborts the entire run with an algorithm-level error, e.g. when a
// node detects its input violates a documented precondition.
func (nd *Node) Fail(format string, args ...any) {
	panic(violation{fmt.Errorf("clique: node %d: %s", nd.id, fmt.Sprintf(format, args...))})
}

// Endpoint is the node-side API every congested clique algorithm is
// written against. The real engine's *Node implements it, and so does
// the virtual-clique simulator's node (package virtual); algorithms
// written against Endpoint therefore run unchanged inside a simulated
// clique, which is exactly the simulation argument of Theorem 10 of the
// paper.
type Endpoint interface {
	// ID returns this node's identifier in 0..N-1.
	ID() int
	// N returns the number of nodes in the clique.
	N() int
	// Round returns the number of completed rounds.
	Round() int
	// WordsPerPair returns the per-round per-ordered-pair word budget.
	WordsPerPair() int
	// Send queues words for delivery to node `to` this round.
	Send(to int, words ...uint64)
	// Broadcast queues the same words for every other node.
	Broadcast(words ...uint64)
	// Tick completes the current round.
	Tick()
	// Recv returns the words received from `from` in the last round.
	Recv(from int) []uint64
	// Fail aborts the run with an algorithm-level error.
	Fail(format string, args ...any)
}

var _ Endpoint = (*Node)(nil)

// findBroadcastViolation returns the first (from, to) pair whose queued
// words differ from node from's words to its lowest-id peer, or (-1, -1)
// if every node's outbox row is uniform (the broadcast clique's law).
func (e *engine) findBroadcastViolation() (int, int) {
	for from := 0; from < e.n; from++ {
		row := e.outbox[from]
		var ref []uint64
		first := true
		for to := 0; to < e.n; to++ {
			if to == from {
				continue
			}
			if first {
				ref = row[to]
				first = false
				continue
			}
			if len(row[to]) != len(ref) {
				return from, to
			}
			for i := range ref {
				if row[to][i] != ref[i] {
					return from, to
				}
			}
		}
	}
	return -1, -1
}
