// Package nondet implements Section 5 of the paper: nondeterministic
// congested clique algorithms. A nondeterministic algorithm A takes, in
// addition to the input graph, a labelling z assigning every node a
// certificate, and decides a language L in the sense that
//
//	G in L  iff  exists z : A(G, z) = 1,
//
// where A(G, z) = 1 means every node outputs 1. The package provides the
// execution harness, certificates and verifiers for the natural
// NCLIQUE(1) problems the paper names (k-colouring, Hamiltonian path,
// and friends), and the Theorem 3 normal form: any nondeterministic
// algorithm can be replaced by one whose certificates are communication
// transcripts of size O(T(n) n log n).
package nondet
