package nondet

import (
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
)

// runLabellingCheck verifies a proposed labelling in-model.
func runLabellingCheck(t *testing.T, g *graph.Graph, p LabellingProblem, z Labelling) bool {
	t.Helper()
	v, err := RunVerifier(clique.Config{N: g.N}, g, p.Check, z)
	if err != nil {
		t.Fatal(err)
	}
	return v.Accepted
}

func TestProperColoringProblem(t *testing.T) {
	p := ProperColoringProblem(3)
	g, _ := graph.PlantedColoring(8, 3, 0.7, 3)
	z := p.Solve(g)
	if z == nil {
		t.Fatal("solve failed on colourable instance")
	}
	if !runLabellingCheck(t, g, p, z) {
		t.Error("solved labelling rejected by checker")
	}
	// The distributed trivial solver produces a checkable labelling too.
	rows := make(Labelling, g.N)
	_, err := clique.Run(clique.Config{N: g.N}, func(nd *clique.Node) {
		rows[nd.ID()] = SolveByGather(nd, g.Row(nd.ID()), p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !runLabellingCheck(t, g, p, rows) {
		t.Error("gather-solved labelling rejected")
	}
}

func TestSolveByGatherRejectsUnsolvable(t *testing.T) {
	p := ProperColoringProblem(2)
	c5 := graph.Cycle(5)
	_, err := clique.Run(clique.Config{N: c5.N}, func(nd *clique.Node) {
		if got := SolveByGather(nd, c5.Row(nd.ID()), p); got != nil {
			nd.Fail("2-coloured C5: %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSinklessOrientation(t *testing.T) {
	p := SinklessOrientationProblem()
	// A 3-regular-ish graph: the complete graph K5.
	g := graph.Complete(5)
	z := p.Solve(g)
	if z == nil {
		t.Fatal("no sinkless orientation of K5 found")
	}
	if !runLabellingCheck(t, g, p, z) {
		t.Error("solved orientation rejected")
	}
	// Tamper: make node 0 a sink by clearing its out-mask and pointing
	// every incident edge inwards.
	bad := make(Labelling, g.N)
	for i := range z {
		bad[i] = append([]uint64(nil), z[i]...)
	}
	bad[0] = []uint64{0}
	for v := 1; v < g.N; v++ {
		bad[v] = []uint64{bad[v][0] | 1} // everyone orients towards 0... (bit 0)
	}
	if runLabellingCheck(t, g, p, bad) {
		t.Error("orientation with a sink at a degree-4 node accepted")
	}
	// Low-degree graphs are unconstrained: a path has max degree 2.
	path := graph.Path(5)
	zp := p.Solve(path)
	if zp == nil || !runLabellingCheck(t, path, p, zp) {
		t.Error("path orientation failed")
	}
}

func TestSinklessOrientationConflictingEdge(t *testing.T) {
	p := SinklessOrientationProblem()
	g := graph.Complete(4)
	z := p.Solve(g)
	if z == nil {
		t.Fatal("solve failed")
	}
	// Orient edge {0,1} both ways.
	bad := make(Labelling, g.N)
	for i := range z {
		bad[i] = append([]uint64(nil), z[i]...)
	}
	bad[0] = []uint64{bad[0][0] | 1<<1}
	bad[1] = []uint64{bad[1][0] | 1<<0}
	if runLabellingCheck(t, g, p, bad) {
		t.Error("doubly-oriented edge accepted")
	}
}

func TestMaximalMatchingProblem(t *testing.T) {
	p := MaximalMatchingProblem()
	for seed := uint64(0); seed < 5; seed++ {
		g := graph.Gnp(10, 0.3, seed+60)
		z := p.Solve(g)
		if z == nil {
			t.Fatal("greedy matching cannot fail")
		}
		if !runLabellingCheck(t, g, p, z) {
			t.Errorf("seed %d: greedy maximal matching rejected", seed)
		}
	}
	// Non-maximal matching rejected: empty matching on a graph with an
	// edge.
	g := graph.Path(4)
	empty := make(Labelling, g.N)
	for v := range empty {
		empty[v] = []uint64{uint64(g.N)}
	}
	if runLabellingCheck(t, g, p, empty) {
		t.Error("empty matching accepted as maximal on P4")
	}
	// Non-mutual matching rejected.
	bad := make(Labelling, g.N)
	bad[0] = []uint64{1}
	bad[1] = []uint64{2}
	bad[2] = []uint64{1}
	bad[3] = []uint64{uint64(g.N)}
	if runLabellingCheck(t, g, p, bad) {
		t.Error("non-mutual matching accepted")
	}
}

func TestLabellingProblemsAreConstantRound(t *testing.T) {
	// NCLIQUE(1)-labelling membership: the checkers run O(1) rounds at
	// every n.
	problems := []LabellingProblem{
		ProperColoringProblem(3),
		SinklessOrientationProblem(),
		MaximalMatchingProblem(),
	}
	for _, p := range problems {
		for _, n := range []int{8, 16, 32} {
			g := graph.Gnp(n, 0.4, uint64(n))
			z := p.Solve(g)
			if z == nil {
				continue
			}
			v, err := RunVerifier(clique.Config{N: n}, g, p.Check, z)
			if err != nil {
				t.Fatal(err)
			}
			if v.Result.Stats.Rounds > p.Rounds {
				t.Errorf("%s at n=%d: %d rounds, declared %d", p.Name, n,
					v.Result.Stats.Rounds, p.Rounds)
			}
		}
	}
}

func TestMonteCarloOneSidedness(t *testing.T) {
	mc := RandomizedTriangleProbe()
	// Never accepts a triangle-free graph, over many seeds.
	free := graph.PlantedTriangleFree(10, 0.5, 4)
	for seed := uint64(0); seed < 40; seed++ {
		ok, err := mc.RunWithSeed(clique.Config{N: free.N}, free, seed)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("seed %d: accepted a triangle-free graph", seed)
		}
	}
}

func TestMonteCarloFindsPlantedTriangle(t *testing.T) {
	g := graph.PlantedTriangleFree(6, 0.5, 9)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	mc := RandomizedTriangleProbe()
	hits := 0
	for seed := uint64(0); seed < 60; seed++ {
		ok, err := mc.RunWithSeed(clique.Config{N: g.N}, g, seed)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			hits++
		}
	}
	if hits == 0 {
		t.Error("60 random seeds never found the planted triangle (probability bug?)")
	}
}

func TestMonteCarloAsNondeterministic(t *testing.T) {
	// Section 8's conversion: the lucky randomness is a certificate.
	g := graph.PlantedTriangleFree(7, 0.4, 2)
	g.AddEdge(1, 3)
	g.AddEdge(3, 5)
	g.AddEdge(1, 5)
	mc := RandomizedTriangleProbe()
	alg := mc.AsNondeterministic()

	// Craft the certificate: node 1 probes the pair (3, 5).
	z := make(Labelling, g.N)
	for v := range z {
		z[v] = []uint64{0}
	}
	z[1] = []uint64{uint64(3) + uint64(5)*uint64(g.N)}
	v, err := RunVerifier(clique.Config{N: g.N}, g, alg, z)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Accepted {
		t.Error("crafted certificate rejected on a yes-instance")
	}

	// Soundness inherits one-sidedness: exhaustively check a small slice
	// of the certificate space on a no-instance (the full space is
	// 25^5; a 5^5 subspace plus the soundness argument — claims are
	// always validated against real adjacency rows — keeps this fast).
	free := graph.PlantedTriangleFree(5, 0.6, 11)
	found, _, err := ExhaustiveDecide(clique.Config{N: free.N}, free, alg, WordSpace(5))
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("certificate found for a triangle-free graph")
	}
}
