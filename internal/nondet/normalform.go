package nondet

import (
	"fmt"

	"repro/internal/clique"
	"repro/internal/graph"
)

// This file implements Theorem 3 of the paper: every language in
// NCLIQUE(T(n)) has a nondeterministic algorithm whose certificates are
// communication transcripts of size O(T(n) n log n). The construction is
// literal:
//
//	(1) each node checks its label parses as a transcript of the right
//	    shape;
//	(2) nodes replay the transcripts against each other for T rounds and
//	    verify that every received message matches the transcript;
//	(3) each node locally searches for an original label under which the
//	    original algorithm A, fed the transcript's incoming messages,
//	    would have produced exactly the transcript's outgoing messages
//	    and accepted.
//
// Completeness and soundness follow as in the paper: an accepting run of
// A yields transcripts that B accepts, and any labelling accepted by B
// pins down per-node original labels whose combined run of A accepts.

// EncodeTranscript serialises one node's transcript: for every round and
// every peer, the sent words then the received words, each preceded by a
// count. The layout is [rounds, then per round: per peer != me:
// len(sent), sent..., len(recv), recv...].
func EncodeTranscript(tr *clique.Transcript, n int) []uint64 {
	out := []uint64{uint64(len(tr.Rounds))}
	for _, r := range tr.Rounds {
		for p := 0; p < n; p++ {
			if p == tr.NodeID {
				continue
			}
			out = append(out, uint64(len(r.Sent[p])))
			out = append(out, r.Sent[p]...)
			out = append(out, uint64(len(r.Recv[p])))
			out = append(out, r.Recv[p]...)
		}
	}
	return out
}

// DecodeTranscript parses a transcript label for node `me` of an n-node
// clique, enforcing that it declares at most maxRounds rounds and at
// most maxWordsPerPair words per direction per pair (the structural
// check of step (1)). Returns nil if malformed.
func DecodeTranscript(words []uint64, me, n, maxRounds, maxWordsPerPair int) *clique.Transcript {
	if len(words) == 0 {
		return nil
	}
	rounds := int(words[0])
	if rounds < 0 || rounds > maxRounds {
		return nil
	}
	tr := &clique.Transcript{NodeID: me}
	pos := 1
	take := func() ([]uint64, bool) {
		if pos >= len(words) {
			return nil, false
		}
		cnt := int(words[pos])
		pos++
		if cnt < 0 || cnt > maxWordsPerPair || pos+cnt > len(words) {
			return nil, false
		}
		out := words[pos : pos+cnt]
		pos += cnt
		return out, true
	}
	for r := 0; r < rounds; r++ {
		round := clique.TranscriptRound{
			Sent: make([][]uint64, n),
			Recv: make([][]uint64, n),
		}
		for p := 0; p < n; p++ {
			if p == me {
				continue
			}
			sent, ok := take()
			if !ok {
				return nil
			}
			recv, ok := take()
			if !ok {
				return nil
			}
			round.Sent[p] = append([]uint64(nil), sent...)
			round.Recv[p] = append([]uint64(nil), recv...)
		}
		tr.Rounds = append(tr.Rounds, round)
	}
	if pos != len(words) {
		return nil
	}
	return tr
}

// TranscriptCertificate runs A on (g, z), records every node's
// communication transcript, and returns the transcript labelling for
// the normal-form verifier. It fails if A does not accept (G, z):
// transcripts of rejecting runs certify nothing.
func TranscriptCertificate(cfg clique.Config, g *graph.Graph, alg Algorithm, z Labelling) (Labelling, error) {
	cfg.RecordTranscript = true
	verdict, err := RunVerifier(cfg, g, alg, z)
	if err != nil {
		return nil, err
	}
	if !verdict.Accepted {
		return nil, fmt.Errorf("nondet: A rejected the labelling; no certificate to extract")
	}
	out := make(Labelling, g.N)
	for v, tr := range verdict.Result.Transcripts {
		out[v] = EncodeTranscript(tr, g.N)
	}
	return out, nil
}

// NormalForm builds the Theorem 3 verifier B from the original verifier
// A, A's round bound T, and the per-node label space of A. B runs
// exactly T+0 replay rounds plus whatever the structural bookkeeping
// needs; its certificates are the transcript labels produced by
// TranscriptCertificate.
func NormalForm(alg Algorithm, T int, space LabelSpace) Algorithm {
	return func(nd clique.Endpoint, row graph.Bitset, label []uint64) bool {
		n := nd.N()
		me := nd.ID()
		wpp := nd.WordsPerPair()

		// Step 1: structural check. Malformed labels still participate
		// in the replay rounds (sending nothing) so that the round
		// structure is identical at every node.
		tr := DecodeTranscript(label, me, n, T, wpp)
		ok := tr != nil

		// Step 2: replay. Round r: send exactly the transcript's sent
		// words; compare everything received against the transcript.
		for r := 0; r < T; r++ {
			if ok && r < len(tr.Rounds) {
				for p := 0; p < n; p++ {
					if p != me && len(tr.Rounds[r].Sent[p]) > 0 {
						nd.Send(p, tr.Rounds[r].Sent[p]...)
					}
				}
			}
			nd.Tick()
			for p := 0; p < n; p++ {
				if p == me {
					continue
				}
				got := nd.Recv(p)
				var want []uint64
				if ok && r < len(tr.Rounds) {
					want = tr.Rounds[r].Recv[p]
				}
				if !wordsEqual(got, want) {
					ok = false
				}
			}
		}
		if !ok {
			return false
		}

		// Step 3: local search over A's label space. Feed A the
		// transcript's received messages and demand that it sends
		// exactly the transcript's sent messages and accepts. This is
		// local computation: the replay harness spins up a private
		// simulation of the single node.
		inbox := make([][][]uint64, len(tr.Rounds))
		for r := range tr.Rounds {
			inbox[r] = make([][]uint64, n)
			for p := 0; p < n; p++ {
				if p != me {
					inbox[r][p] = tr.Rounds[r].Recv[p]
				}
			}
		}
		found := false
		space(func(cand []uint64) bool {
			accepted := false
			rep, err := clique.Replay(clique.Config{N: n, WordsPerPair: wpp}, me,
				func(sim *clique.Node) {
					accepted = alg(sim, row, cand)
				}, inbox)
			if err != nil || !rep.Completed || !accepted {
				return true // keep searching
			}
			// A's sends must reproduce the transcript exactly.
			if len(rep.Sent) != len(tr.Rounds) {
				return true
			}
			for r := range rep.Sent {
				for p := 0; p < n; p++ {
					if p == me {
						continue
					}
					if !wordsEqual(rep.Sent[r][p], tr.Rounds[r].Sent[p]) {
						return true
					}
				}
			}
			found = true
			return false
		})
		return found
	}
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
