package nondet

import (
	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/gather"
	"repro/internal/graph"
)

// This file implements the search-problem class sketched in Section 8 of
// the paper: NCLIQUE(1)-labelling problems, the congested clique
// analogue of Naor-Stockmeyer LCLs. A problem is a set of pairs (G, z)
// whose membership is decidable in constant rounds; the computational
// task is to *output* a labelling z with (G, z) in L, or reject if none
// exists. The paper notes this class "captures many natural graph
// problems of interest, but we do not have lower bounds for any problem
// in this class" — so what the repository can contribute is the
// executable definition, members, and the trivial upper bound.

// LabellingProblem is an NCLIQUE(1)-labelling problem. Check is the
// constant-round membership verifier (each node sees its input row and
// its own proposed label and outputs an accept bit; (G, z) is in L iff
// all accept). Solve is a centralized search for a witness labelling
// used as ground truth; it returns nil if none exists.
type LabellingProblem struct {
	Name string
	// Rounds bounds Check's round count (must be O(1)).
	Rounds int
	Check  Algorithm
	Solve  func(g *graph.Graph) Labelling
}

// SolveByGather is the trivial distributed solver for any labelling
// problem with a centralized Solve: every node gathers the whole input
// (O(n / log n) rounds), runs the same deterministic search locally, and
// outputs its own label. Returns nil at every node if the instance has
// no valid labelling. This realises the observation that every
// NCLIQUE(1)-labelling problem is solvable in O(n / log n) rounds, the
// trivial ceiling below which no lower bound is known.
func SolveByGather(nd clique.Endpoint, row graph.Bitset, p LabellingProblem) []uint64 {
	full := gather.Full(nd, row)
	z := p.Solve(full)
	if z == nil {
		return nil
	}
	return z[nd.ID()]
}

// ProperColoringProblem is the k-colouring search problem: find a proper
// k-colouring.
func ProperColoringProblem(k int) LabellingProblem {
	return LabellingProblem{
		Name:   "proper-coloring",
		Rounds: 1,
		Check:  KColoringVerifier(k),
		Solve: func(g *graph.Graph) Labelling {
			return KColoringProver(g, k)
		},
	}
}

// SinklessOrientationProblem is the congested clique rendition of the
// LOCAL model's flagship LCL: orient every edge so that no node of
// degree >= 3 is a sink (all incident edges pointing in). Labels: node
// v's label is the bitmask (over peers, LSB = peer 0) of its incident
// edges oriented *outwards*. The verifier broadcasts the mask (one
// word; poly(n) values require n <= 64 here, enough for experiments)
// and checks antisymmetry and the sink condition locally.
func SinklessOrientationProblem() LabellingProblem {
	check := func(nd clique.Endpoint, row graph.Bitset, label []uint64) bool {
		n := nd.N()
		me := nd.ID()
		var mask uint64
		if len(label) == 1 {
			mask = label[0]
		}
		masks, delivered := comm.BroadcastWordOK(nd, mask)
		if len(label) != 1 {
			return false
		}
		// Orientation must only cover real incident edges.
		outDeg := 0
		for u := 0; u < n; u++ {
			out := mask&(1<<u) != 0
			if out && !row.Has(u) {
				return false
			}
			if out {
				outDeg++
			}
		}
		ok := true
		row.Each(func(u int) {
			if !delivered[u] {
				ok = false
				return
			}
			peerOut := masks[u]&(1<<me) != 0
			myOut := mask&(1<<u) != 0
			if peerOut == myOut {
				ok = false // each edge oriented exactly one way
			}
		})
		if !ok {
			return false
		}
		// Sinkless: degree >= 3 nodes need at least one outgoing edge.
		if row.Count() >= 3 && outDeg == 0 {
			return false
		}
		return true
	}
	return LabellingProblem{
		Name:   "sinkless-orientation",
		Rounds: 1,
		Check:  check,
		Solve:  solveSinkless,
	}
}

// solveSinkless finds a sinkless orientation by orienting each edge and
// then fixing sinks along augmenting edges; for simplicity and
// determinism it brute-forces small cases via orientation search on the
// edge list, falling back from a smart initial orientation.
func solveSinkless(g *graph.Graph) Labelling {
	type edge struct{ u, v int }
	var edges []edge
	g.Edges(func(u, v int) { edges = append(edges, edge{u, v}) })

	// orient[i] = true means edges[i] points u -> v.
	orient := make([]bool, len(edges))
	outDeg := make([]int, g.N)
	for i, e := range edges {
		// Initial heuristic: point towards the smaller-degree endpoint
		// (gives high-degree nodes outgoing edges).
		orient[i] = g.Degree(e.v) <= g.Degree(e.u)
		if orient[i] {
			outDeg[e.u]++
		} else {
			outDeg[e.v]++
		}
	}
	sinkAt := func() int {
		for v := 0; v < g.N; v++ {
			if g.Degree(v) >= 3 && outDeg[v] == 0 {
				return v
			}
		}
		return -1
	}
	// Local repair: flip one incident edge of each sink. Flipping gives
	// the sink an outgoing edge and steals one from a neighbour, which
	// cannot become a sink itself if it has other outgoing edges; pick
	// the neighbour with the most.
	for guard := 0; guard < g.N*g.N; guard++ {
		s := sinkAt()
		if s < 0 {
			break
		}
		bestIdx, bestOut := -1, -1
		for i, e := range edges {
			var other int
			switch {
			case e.u == s && !orient[i]:
				other = e.v
			case e.v == s && orient[i]:
				other = e.u
			default:
				continue
			}
			if outDeg[other] > bestOut {
				bestOut, bestIdx = outDeg[other], i
			}
		}
		if bestIdx < 0 {
			return nil // isolated-ish; cannot repair
		}
		e := edges[bestIdx]
		if orient[bestIdx] {
			outDeg[e.u]--
			outDeg[e.v]++
		} else {
			outDeg[e.u]++
			outDeg[e.v]--
		}
		orient[bestIdx] = !orient[bestIdx]
	}
	if sinkAt() >= 0 {
		return nil
	}
	z := make(Labelling, g.N)
	masks := make([]uint64, g.N)
	for i, e := range edges {
		if orient[i] {
			masks[e.u] |= 1 << e.v
		} else {
			masks[e.v] |= 1 << e.u
		}
	}
	for v := range z {
		z[v] = []uint64{masks[v]}
	}
	return z
}

// MaximalMatchingProblem: find a maximal matching (as node labels: mate
// id, or n for unmatched). The verifier checks mutuality, edge
// existence, and maximality (an unmatched node may not have an
// unmatched neighbour).
func MaximalMatchingProblem() LabellingProblem {
	check := func(nd clique.Endpoint, row graph.Bitset, label []uint64) bool {
		n := nd.N()
		me := nd.ID()
		mine := uint64(n)
		if len(label) == 1 {
			mine = label[0]
		}
		mates, delivered := comm.BroadcastWordOK(nd, mine%uint64(n+1))
		if len(label) != 1 || mine > uint64(n) || int(mine) == me {
			return false
		}
		mates[me] = mine
		for u := 0; u < n; u++ {
			if u != me && !delivered[u] {
				return false
			}
		}
		if mine < uint64(n) {
			return row.Has(int(mine)) && mates[mine] == uint64(me)
		}
		// Unmatched: every neighbour must be matched.
		ok := true
		row.Each(func(u int) {
			if mates[u] == uint64(n) {
				ok = false
			}
		})
		return ok
	}
	return LabellingProblem{
		Name:   "maximal-matching",
		Rounds: 1,
		Check:  check,
		Solve: func(g *graph.Graph) Labelling {
			mate := make([]int, g.N)
			for i := range mate {
				mate[i] = g.N
			}
			g.Edges(func(u, v int) {
				if mate[u] == g.N && mate[v] == g.N {
					mate[u], mate[v] = v, u
				}
			})
			z := make(Labelling, g.N)
			for v, m := range mate {
				z[v] = []uint64{uint64(m)}
			}
			return z
		},
	}
}
