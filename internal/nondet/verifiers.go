package nondet

import (
	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
)

// This file implements constant-round verifiers for the natural
// NCLIQUE(1) problems Section 6.1 of the paper names: k-colouring and
// Hamiltonian path (both NP-complete centrally), plus connectivity,
// perfect matching and k-clique. Each comes with a centralized Prover
// that constructs an accepting certificate for yes-instances, used by
// tests and experiments. Every verifier runs O(1) rounds with one word
// per pair — witnessing membership in NCLIQUE(1).

// KColoringVerifier accepts iff the labelling is a proper k-colouring:
// every node broadcasts its colour (one round) and checks its own colour
// is in range and differs from all G-neighbours' colours.
func KColoringVerifier(k int) Algorithm {
	return func(nd clique.Endpoint, row graph.Bitset, label []uint64) bool {
		var mine uint64 = ^uint64(0)
		if len(label) == 1 {
			mine = label[0]
		}
		colors, delivered := comm.BroadcastWordOK(nd, mine%uint64(k))
		if len(label) != 1 || mine >= uint64(k) {
			return false
		}
		ok := true
		row.Each(func(u int) {
			if !delivered[u] || colors[u] == mine {
				ok = false
			}
		})
		return ok
	}
}

// KColoringProver returns an accepting labelling for a k-colourable
// graph, or nil.
func KColoringProver(g *graph.Graph, k int) Labelling {
	colors := graph.FindColoring(g, k)
	if colors == nil {
		return nil
	}
	z := make(Labelling, g.N)
	for v, c := range colors {
		z[v] = []uint64{uint64(c)}
	}
	return z
}

// HamPathVerifier accepts iff the labels place the nodes on a
// Hamiltonian path: node v's label is its position; every node
// broadcasts its position (one round), checks that the positions are a
// permutation of 0..n-1, and checks the edge to its successor using its
// own adjacency row.
func HamPathVerifier() Algorithm {
	return func(nd clique.Endpoint, row graph.Bitset, label []uint64) bool {
		n := nd.N()
		var mine uint64 = ^uint64(0)
		if len(label) == 1 {
			mine = label[0]
		}
		positions, delivered := comm.BroadcastWordOK(nd, mine%uint64(n))
		if len(label) != 1 || mine >= uint64(n) {
			return false
		}
		pos := make([]int, n) // node -> position
		pos[nd.ID()] = int(mine)
		seen := make([]bool, n)
		seen[mine] = true
		for u := 0; u < n; u++ {
			if u == nd.ID() {
				continue
			}
			if !delivered[u] || positions[u] >= uint64(n) || seen[positions[u]] {
				return false
			}
			seen[positions[u]] = true
			pos[u] = int(positions[u])
		}
		// Check my edge to my successor (the node at position mine+1).
		if int(mine) == n-1 {
			return true // last node has no successor
		}
		for u := 0; u < n; u++ {
			if u != nd.ID() && pos[u] == int(mine)+1 {
				return row.Has(u)
			}
		}
		return false
	}
}

// HamPathProver returns an accepting labelling for a graph with a
// Hamiltonian path, or nil. Exponential-time local search, as the model
// allows.
func HamPathProver(g *graph.Graph) Labelling {
	n := g.N
	if n == 0 {
		return nil
	}
	order := make([]int, 0, n)
	used := make([]bool, n)
	var rec func() bool
	rec = func() bool {
		if len(order) == n {
			return true
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			if len(order) > 0 && !g.HasEdge(order[len(order)-1], v) {
				continue
			}
			used[v] = true
			order = append(order, v)
			if rec() {
				return true
			}
			order = order[:len(order)-1]
			used[v] = false
		}
		return false
	}
	if !rec() {
		return nil
	}
	z := make(Labelling, n)
	for i, v := range order {
		z[v] = []uint64{uint64(i)}
	}
	return z
}

// ConnectivityVerifier accepts iff the labels encode a spanning tree
// rooted anywhere: node labels are (parent, depth); each node broadcasts
// both (two rounds at one word per pair), then checks there is exactly
// one root (parent = self, depth 0), that its own parent is a
// G-neighbour with depth exactly one less, and that depths are bounded.
// A valid certificate exists iff G is connected.
func ConnectivityVerifier() Algorithm {
	return func(nd clique.Endpoint, row graph.Bitset, label []uint64) bool {
		n := nd.N()
		me := nd.ID()
		var parent, depth uint64 = ^uint64(0), ^uint64(0)
		if len(label) == 2 {
			parent, depth = label[0], label[1]
		}
		parents := broadcastCollect(nd, parent%uint64(n))
		depths := broadcastCollect(nd, depth%uint64(n))
		if len(label) != 2 || parent >= uint64(n) || depth >= uint64(n) {
			return false
		}
		parents[me] = parent
		depths[me] = depth

		roots := 0
		for v := 0; v < n; v++ {
			if parents[v] == uint64(v) {
				roots++
				if depths[v] != 0 {
					return false
				}
			}
		}
		if roots != 1 {
			return false
		}
		if parent == uint64(me) {
			return true // I am the root
		}
		// My parent must be a real neighbour one level up.
		return row.Has(int(parent)) && depths[parent]+1 == depth
	}
}

// ConnectivityProver returns an accepting labelling for a connected
// graph (a BFS tree from node 0), or nil for a disconnected one.
func ConnectivityProver(g *graph.Graph) Labelling {
	dist := graph.BFSDistances(g, 0)
	parent := make([]int, g.N)
	parent[0] = 0
	for v := 1; v < g.N; v++ {
		if dist[v] >= graph.Inf {
			return nil
		}
		p := -1
		g.Neighbors(v, func(u int) {
			if p < 0 && dist[u]+1 == dist[v] {
				p = u
			}
		})
		parent[v] = p
	}
	z := make(Labelling, g.N)
	for v := range z {
		z[v] = []uint64{uint64(parent[v]), uint64(dist[v])}
	}
	return z
}

// PerfectMatchingVerifier accepts iff the labels form a perfect
// matching: node v's label is its mate; one broadcast round, then each
// node checks mutuality and that its matching edge exists.
func PerfectMatchingVerifier() Algorithm {
	return func(nd clique.Endpoint, row graph.Bitset, label []uint64) bool {
		n := nd.N()
		me := nd.ID()
		var mate uint64 = ^uint64(0)
		if len(label) == 1 {
			mate = label[0]
		}
		mates := broadcastCollect(nd, mate%uint64(n))
		if len(label) != 1 || mate >= uint64(n) || int(mate) == me {
			return false
		}
		mates[me] = mate
		return mates[mate] == uint64(me) && row.Has(int(mate))
	}
}

// PerfectMatchingProver returns an accepting labelling for a graph with
// a perfect matching, or nil.
func PerfectMatchingProver(g *graph.Graph) Labelling {
	n := g.N
	if n%2 == 1 {
		return nil
	}
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return true
		}
		if mate[v] >= 0 {
			return rec(v + 1)
		}
		ok := false
		g.Neighbors(v, func(u int) {
			if ok || u < v || mate[u] >= 0 {
				return
			}
			mate[v], mate[u] = u, v
			if rec(v + 1) {
				ok = true
				return
			}
			mate[v], mate[u] = -1, -1
		})
		return ok
	}
	if !rec(0) {
		return nil
	}
	z := make(Labelling, n)
	for v, m := range mate {
		z[v] = []uint64{uint64(m)}
	}
	return z
}

// KCliqueVerifier accepts iff the labelled nodes (label word 1) form a
// clique of size exactly k: one membership broadcast round, then each
// member checks its adjacency to all other members, and everyone checks
// the count.
func KCliqueVerifier(k int) Algorithm {
	return func(nd clique.Endpoint, row graph.Bitset, label []uint64) bool {
		n := nd.N()
		me := nd.ID()
		var mine uint64
		if len(label) == 1 && label[0] == 1 {
			mine = 1
		}
		members := broadcastCollect(nd, mine)
		if len(label) != 1 || label[0] > 1 {
			return false
		}
		members[me] = mine
		count := 0
		for _, m := range members {
			if m == 1 {
				count++
			}
		}
		if count != k {
			return false
		}
		if mine == 1 {
			for v := 0; v < n; v++ {
				if v != me && members[v] == 1 && !row.Has(v) {
					return false
				}
			}
		}
		return true
	}
}

// KCliqueProver returns an accepting labelling for a graph containing a
// k-clique, or nil.
func KCliqueProver(g *graph.Graph, k int) Labelling {
	set := graph.FindClique(g, k)
	if set == nil {
		return nil
	}
	z := make(Labelling, g.N)
	for v := range z {
		z[v] = []uint64{0}
	}
	for _, v := range set {
		z[v] = []uint64{1}
	}
	return z
}

// broadcastCollect broadcasts one word and gathers one word per node,
// recording ^uint64(0) for peers that did not deliver exactly one word
// (reachable when a verifier is replayed against an adversarial
// transcript). The node's own slot holds the word it broadcast;
// callers overwrite it when they need the raw label instead.
func broadcastCollect(nd clique.Endpoint, w uint64) []uint64 {
	vals, ok := comm.BroadcastWordOK(nd, w)
	for i := range vals {
		if !ok[i] {
			vals[i] = ^uint64(0)
		}
	}
	return vals
}
