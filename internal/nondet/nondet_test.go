package nondet

import (
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
)

func accept(t *testing.T, g *graph.Graph, alg Algorithm, z Labelling, wpp int) Verdict {
	t.Helper()
	v, err := RunVerifier(clique.Config{N: g.N, WordsPerPair: wpp}, g, alg, z)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestKColoringVerifier(t *testing.T) {
	g, _ := graph.PlantedColoring(8, 3, 0.7, 5)
	z := KColoringProver(g, 3)
	if z == nil {
		t.Fatal("prover failed on 3-colourable graph")
	}
	if !accept(t, g, KColoringVerifier(3), z, 1).Accepted {
		t.Error("honest 3-colouring rejected")
	}
	// Corrupt one colour to collide with a neighbour.
	bad := make(Labelling, g.N)
	copy(bad, z)
	var u, v int = -1, -1
	g.Edges(func(a, b int) {
		if u < 0 {
			u, v = a, b
		}
	})
	bad[u] = []uint64{bad[v][0]}
	if accept(t, g, KColoringVerifier(3), bad, 1).Accepted {
		t.Error("monochromatic edge accepted")
	}
	// C5 is not 2-colourable: no certificate exists.
	c5 := graph.Cycle(5)
	found, _, err := ExhaustiveDecide(clique.Config{N: 5}, c5, KColoringVerifier(2), WordSpace(2))
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("exhaustive search found a 2-colouring certificate for C5")
	}
	// ...but it is 3-colourable, and exhaustive search agrees.
	found3, witness, err := ExhaustiveDecide(clique.Config{N: 5}, c5, KColoringVerifier(3), WordSpace(3))
	if err != nil {
		t.Fatal(err)
	}
	if !found3 {
		t.Error("exhaustive search missed a 3-colouring certificate for C5")
	}
	colors := make([]int, 5)
	for i := range colors {
		colors[i] = int(witness[i][0])
	}
	if !graph.IsProperColoring(c5, colors, 3) {
		t.Errorf("witness %v is not a proper colouring", witness)
	}
}

func TestKColoringVerifierConstantRounds(t *testing.T) {
	// NCLIQUE(1) membership: the verifier's round count is 1 regardless
	// of n.
	for _, n := range []int{6, 12, 24} {
		g, _ := graph.PlantedColoring(n, 3, 0.6, uint64(n))
		z := KColoringProver(g, 3)
		v := accept(t, g, KColoringVerifier(3), z, 1)
		if v.Result.Stats.Rounds != 1 {
			t.Errorf("n=%d: verifier used %d rounds, want 1", n, v.Result.Stats.Rounds)
		}
	}
}

func TestHamPathVerifier(t *testing.T) {
	g, _ := graph.PlantedHamiltonianPath(8, 0.15, 9)
	z := HamPathProver(g)
	if z == nil {
		t.Fatal("prover failed on graph with planted Hamiltonian path")
	}
	if !accept(t, g, HamPathVerifier(), z, 1).Accepted {
		t.Error("honest Hamiltonian path rejected")
	}
	// A permutation that is not a path must be rejected (star graph has
	// no Hamiltonian path on >= 4 nodes).
	star := graph.CompleteBipartite(1, 4)
	z2 := make(Labelling, star.N)
	for v := range z2 {
		z2[v] = []uint64{uint64(v)}
	}
	if accept(t, star, HamPathVerifier(), z2, 1).Accepted {
		t.Error("non-path certificate accepted")
	}
	// Duplicate positions must be rejected.
	dup := make(Labelling, g.N)
	copy(dup, z)
	dup[0] = append([]uint64(nil), z[1][0])
	if accept(t, g, HamPathVerifier(), dup, 1).Accepted {
		t.Error("duplicate positions accepted")
	}
}

func TestConnectivityVerifier(t *testing.T) {
	g := graph.Gnp(10, 0.35, 3)
	z := ConnectivityProver(g)
	if z == nil {
		t.Skip("random graph happened to be disconnected")
	}
	if !accept(t, g, ConnectivityVerifier(), z, 1).Accepted {
		t.Error("honest spanning tree rejected")
	}
	// Disconnected graph: prover fails, and forged trees are rejected.
	h := graph.New(6)
	h.AddEdge(0, 1)
	h.AddEdge(2, 3)
	if ConnectivityProver(h) != nil {
		t.Error("prover produced a tree for a disconnected graph")
	}
	forged := make(Labelling, h.N)
	for v := range forged {
		forged[v] = []uint64{0, 1} // everyone claims parent 0 depth 1
	}
	forged[0] = []uint64{0, 0}
	if accept(t, h, ConnectivityVerifier(), forged, 1).Accepted {
		t.Error("forged spanning tree accepted on disconnected graph")
	}
}

func TestPerfectMatchingVerifier(t *testing.T) {
	// C6 has a perfect matching; C5 has odd order.
	c6 := graph.Cycle(6)
	z := PerfectMatchingProver(c6)
	if z == nil {
		t.Fatal("prover failed on C6")
	}
	if !accept(t, c6, PerfectMatchingVerifier(), z, 1).Accepted {
		t.Error("honest matching rejected")
	}
	if PerfectMatchingProver(graph.Cycle(5)) != nil {
		t.Error("odd graph has no perfect matching")
	}
	// Non-mutual mates rejected.
	bad := make(Labelling, 6)
	for v := range bad {
		bad[v] = []uint64{uint64((v + 1) % 6)}
	}
	if accept(t, c6, PerfectMatchingVerifier(), bad, 1).Accepted {
		t.Error("rotation accepted as matching")
	}
}

func TestKCliqueVerifier(t *testing.T) {
	g := graph.Gnp(10, 0.6, 12)
	k := 3
	if !graph.HasCliqueOfSize(g, k) {
		t.Skip("no 3-clique in random graph")
	}
	z := KCliqueProver(g, k)
	if !accept(t, g, KCliqueVerifier(k), z, 1).Accepted {
		t.Error("honest clique certificate rejected")
	}
	// Wrong count rejected.
	badCount := make(Labelling, g.N)
	for v := range badCount {
		badCount[v] = []uint64{0}
	}
	if accept(t, g, KCliqueVerifier(k), badCount, 1).Accepted {
		t.Error("empty set accepted as 3-clique")
	}
	// A claimed clique with a missing edge rejected.
	tf := graph.PlantedTriangleFree(9, 0.5, 4)
	claim := make(Labelling, tf.N)
	for v := range claim {
		claim[v] = []uint64{0}
	}
	claim[0], claim[1], claim[2] = []uint64{1}, []uint64{1}, []uint64{1}
	if accept(t, tf, KCliqueVerifier(3), claim, 1).Accepted {
		t.Error("triangle claimed in triangle-free graph accepted")
	}
}

func TestExhaustiveDecideMatchesOracle(t *testing.T) {
	// The "exists z" semantics on every 4-node graph for 2-colouring.
	for mask := 0; mask < 64; mask += 5 {
		g := graph.New(4)
		e := 0
		for u := 0; u < 4; u++ {
			for v := u + 1; v < 4; v++ {
				if mask&(1<<e) != 0 {
					g.AddEdge(u, v)
				}
				e++
			}
		}
		want := graph.IsKColorable(g, 2)
		got, _, err := ExhaustiveDecide(clique.Config{N: 4}, g, KColoringVerifier(2), WordSpace(2))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("mask %d: exhaustive = %v, oracle = %v", mask, got, want)
		}
	}
}

func TestLabellingSizes(t *testing.T) {
	z := Labelling{{1, 2, 3}, {4}, nil}
	if z.SizeWords() != 3 {
		t.Errorf("SizeWords = %d", z.SizeWords())
	}
	if z.SizeBits(16) != 3*4 {
		t.Errorf("SizeBits = %d", z.SizeBits(16))
	}
}

func TestTupleSpace(t *testing.T) {
	var got [][]uint64
	TupleSpace(2, 2)(func(l []uint64) bool {
		got = append(got, l)
		return true
	})
	if len(got) != 4 {
		t.Fatalf("TupleSpace(2,2) emitted %d labels", len(got))
	}
}

func TestTranscriptEncodeDecodeRoundTrip(t *testing.T) {
	g, _ := graph.PlantedColoring(6, 3, 0.6, 8)
	z := KColoringProver(g, 3)
	certs, err := TranscriptCertificate(clique.Config{N: g.N}, g, KColoringVerifier(3), z)
	if err != nil {
		t.Fatal(err)
	}
	for v := range certs {
		tr := DecodeTranscript(certs[v], v, g.N, 1, 1)
		if tr == nil {
			t.Fatalf("node %d: certificate does not decode", v)
		}
		re := EncodeTranscript(tr, g.N)
		if !wordsEqual(re, certs[v]) {
			t.Fatalf("node %d: re-encode differs", v)
		}
	}
	// Structural rejection cases.
	if DecodeTranscript(nil, 0, 6, 1, 1) != nil {
		t.Error("empty label decoded")
	}
	if DecodeTranscript([]uint64{5}, 0, 6, 1, 1) != nil {
		t.Error("over-long transcript decoded")
	}
	if DecodeTranscript(append(append([]uint64(nil), certs[0]...), 9), 0, 6, 1, 1) != nil {
		t.Error("trailing garbage accepted")
	}
}

// normalFormSetup builds the Theorem 3 pipeline for 3-colouring on a
// fixed graph.
func normalFormSetup(t *testing.T, seed uint64) (*graph.Graph, Algorithm, Labelling) {
	t.Helper()
	g, _ := graph.PlantedColoring(6, 3, 0.7, seed)
	alg := KColoringVerifier(3)
	z := KColoringProver(g, 3)
	if z == nil {
		t.Fatal("prover failed")
	}
	certs, err := TranscriptCertificate(clique.Config{N: g.N}, g, alg, z)
	if err != nil {
		t.Fatal(err)
	}
	return g, alg, certs
}

func TestNormalFormAcceptsHonestTranscripts(t *testing.T) {
	g, alg, certs := normalFormSetup(t, 31)
	b := NormalForm(alg, 1, WordSpace(3))
	v := accept(t, g, b, certs, 1)
	if !v.Accepted {
		t.Fatalf("normal form rejected honest transcripts: %v", v.NodeBits)
	}
	if v.Result.Stats.Rounds != 1 {
		t.Errorf("B used %d rounds, want T = 1", v.Result.Stats.Rounds)
	}
}

func TestNormalFormLabelSizeBound(t *testing.T) {
	// Theorem 3: labels are O(T n log n) bits = O(T n) words. For the
	// one-round colouring verifier: 1 header word + per peer 2 count
	// words + <= 2 payload words, i.e. < 5n words.
	g, _, certs := normalFormSetup(t, 32)
	if w := certs.SizeWords(); w > 5*g.N {
		t.Errorf("certificate uses %d words, exceeds 5n = %d", w, 5*g.N)
	}
}

func TestNormalFormRejectsTamperedTranscripts(t *testing.T) {
	g, alg, certs := normalFormSetup(t, 33)
	b := NormalForm(alg, 1, WordSpace(3))

	// Tamper with a payload word of node 2's transcript: replay
	// consistency (step 2) or the local search (step 3) must fail.
	bad := make(Labelling, len(certs))
	for i := range certs {
		bad[i] = append([]uint64(nil), certs[i]...)
	}
	// Find a nonzero-count slot and flip the word after it.
	words := bad[2]
	for i := 1; i < len(words)-1; i++ {
		if words[i] == 1 { // a count of one; next word is payload
			words[i+1] = (words[i+1] + 1) % 3
			break
		}
	}
	if accept(t, g, b, bad, 1).Accepted {
		t.Error("tampered transcript accepted")
	}
}

func TestNormalFormRejectsOnNoInstance(t *testing.T) {
	// C5 with 2 colours: take honest transcripts from a *different*
	// (colourable) graph and present them on C5 — the local search step
	// must fail because no original label reproduces the transcript on
	// C5's input... or replay fails. Either way B rejects.
	c5 := graph.Cycle(5)
	alg := KColoringVerifier(2)
	b := NormalForm(alg, 1, WordSpace(2))

	// Forge transcripts by running A on the 2-colourable C4-plus-isolated
	// graph with a valid colouring; shapes match (same n).
	even := graph.Cycle(4)
	evenPlus := graph.New(5)
	even.Edges(func(u, v int) { evenPlus.AddEdge(u, v) })
	z := KColoringProver(evenPlus, 2)
	forged, err := TranscriptCertificate(clique.Config{N: 5}, evenPlus, alg, z)
	if err != nil {
		t.Fatal(err)
	}
	if accept(t, c5, b, forged, 1).Accepted {
		t.Error("forged transcripts accepted on a no-instance")
	}
	// And malformed labels reject cleanly.
	junk := make(Labelling, 5)
	for i := range junk {
		junk[i] = []uint64{99, 98, 97}
	}
	if accept(t, c5, b, junk, 1).Accepted {
		t.Error("junk labels accepted")
	}
}

func TestNormalFormSoundnessExtractsOriginalLabel(t *testing.T) {
	// If B accepts, the per-node labels found in step 3 must constitute
	// an accepting labelling of A. We verify indirectly: B accepting on
	// a yes-instance implies A accepts some labelling, which the oracle
	// confirms is possible.
	g, alg, certs := normalFormSetup(t, 34)
	b := NormalForm(alg, 1, WordSpace(3))
	if !accept(t, g, b, certs, 1).Accepted {
		t.Fatal("B rejected honest certificate")
	}
	if !graph.IsKColorable(g, 3) {
		t.Fatal("B accepted but oracle says no accepting labelling exists")
	}
}
