package nondet

import (
	"math/rand/v2"

	"repro/internal/clique"
	"repro/internal/comm"
	"repro/internal/graph"
)

// This file implements the randomness observation of Section 8: the
// counting arguments extend to randomized protocols, and in particular
// any one-sided-error Monte Carlo algorithm converts into a
// nondeterministic algorithm — the certificate is simply a lucky random
// string. Hence Theorem 4's separations also rule out fast one-sided
// Monte Carlo algorithms for the constructed languages.

// MonteCarlo is a randomized congested clique decision algorithm: each
// node receives `randWords` uniformly random words alongside its input.
// One-sided error means: on no-instances the algorithm *never* accepts
// (for any randomness), while on yes-instances it accepts with some
// probability over the randomness.
type MonteCarlo struct {
	Name      string
	RandWords int
	Run       func(nd clique.Endpoint, row graph.Bitset, random []uint64) bool
}

// AsNondeterministic converts a one-sided Monte Carlo algorithm into a
// nondeterministic verifier: the label is the per-node random string.
// Completeness holds whenever the MC algorithm has nonzero success
// probability on yes-instances (some randomness works, so some
// certificate works); soundness is exactly the one-sided-error
// condition (no randomness makes it accept a no-instance).
func (mc MonteCarlo) AsNondeterministic() Algorithm {
	return func(nd clique.Endpoint, row graph.Bitset, label []uint64) bool {
		if len(label) != mc.RandWords {
			// Still participate in the protocol's communication with
			// zeroed randomness, then reject, keeping rounds uniform.
			padded := make([]uint64, mc.RandWords)
			mc.Run(nd, row, padded)
			return false
		}
		return mc.Run(nd, row, label)
	}
}

// RunWithSeed executes the Monte Carlo algorithm with pseudo-randomness
// derived from seed, returning the global accept bit. Used by tests and
// experiments to estimate success probabilities.
func (mc MonteCarlo) RunWithSeed(cfg clique.Config, g *graph.Graph, seed uint64) (bool, error) {
	z := RandomLabelling(g.N, mc.RandWords, seed)
	verdict, err := RunVerifier(cfg, g, mc.AsNondeterministic(), z)
	if err != nil {
		return false, err
	}
	return verdict.Accepted, nil
}

// RandomLabelling draws a labelling of `words` words per node from the
// given seed. Word values are full-range; algorithms reduce them as
// needed.
func RandomLabelling(n, words int, seed uint64) Labelling {
	rng := rand.New(rand.NewPCG(seed, 0xda7a))
	z := make(Labelling, n)
	for v := range z {
		z[v] = make([]uint64, words)
		for i := range z[v] {
			z[v][i] = rng.Uint64()
		}
	}
	return z
}

// RandomizedTriangleProbe is a toy one-sided Monte Carlo triangle
// detector used by tests and experiments: each node interprets its
// random word as a neighbour pair to probe; it broadcasts the probe,
// and a triangle is claimed only when a node verifies all three edges
// from its own row plus the probed nodes' confirmations. One round;
// never claims a triangle that is not there; finds a planted one with
// probability that grows with the number of random probes.
func RandomizedTriangleProbe() MonteCarlo {
	return MonteCarlo{
		Name:      "randomized-triangle-probe",
		RandWords: 1,
		Run: func(nd clique.Endpoint, row graph.Bitset, random []uint64) bool {
			n := nd.N()
			me := nd.ID()
			// Probe pair derived from my randomness.
			r := random[0]
			a := int(r % uint64(n))
			b := int(r / uint64(n) % uint64(n))
			// Announce whether (me, a, b) is a triangle from my view:
			// needs edges me-a, me-b (my row) and a-b (I cannot see it;
			// so instead each node announces its row bit for (a, b) of
			// *its own* probe targets).
			myClaim := uint64(0)
			if a != me && b != me && a != b && row.Has(a) && row.Has(b) {
				myClaim = 1 // I see two sides of the probed triangle
			}
			claims, delivered := comm.BroadcastWordOK(nd, myClaim<<62|r%(uint64(n)*uint64(n)))
			// Accept if some node's claimed probe (a, b) is confirmed by
			// an endpoint: I confirm edges (x, a) and (x, b) claimed by
			// x when a == me or b == me and my row has the third edge.
			found := false
			for x := 0; x < n; x++ {
				if !delivered[x] {
					continue
				}
				w := claims[x]
				if w>>62 != 1 {
					continue
				}
				pr := w & (1<<62 - 1)
				pa := int(pr % uint64(n))
				pb := int(pr / uint64(n) % uint64(n))
				// x vouches for edges x-pa and x-pb. If I am pa or pb, I
				// can check the closing edge pa-pb from my own row.
				if me == pa && pb != me && row.Has(pb) && pb != x && pa != x {
					found = true
				}
				if me == pb && pa != me && row.Has(pa) && pa != x && pb != x {
					found = true
				}
			}
			// One more round: spread "found" so all nodes agree.
			votes, voted := comm.BroadcastWordOK(nd, clique.BoolWord(found))
			for x := 0; x < n; x++ {
				if voted[x] && votes[x] == 1 {
					found = true
				}
			}
			return found
		},
	}
}
