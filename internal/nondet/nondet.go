package nondet

import (
	"fmt"

	"repro/internal/clique"
	"repro/internal/graph"
)

// Labelling assigns each node a certificate of whole words (the model's
// O(log n)-bit units); entry v belongs to node v.
type Labelling [][]uint64

// SizeWords returns the maximum label length in words.
func (z Labelling) SizeWords() int {
	max := 0
	for _, l := range z {
		if len(l) > max {
			max = len(l)
		}
	}
	return max
}

// SizeBits returns the labelling size in model bits for an n-node clique.
func (z Labelling) SizeBits(n int) int {
	return z.SizeWords() * clique.WordBits(n)
}

// Algorithm is a nondeterministic congested clique algorithm in verifier
// form: the deterministic per-node computation given the node's label.
// The return value is the node's accept bit.
type Algorithm func(nd clique.Endpoint, row graph.Bitset, label []uint64) bool

// Verdict is the result of running a verifier on a labelled input.
type Verdict struct {
	// Accepted is true iff every node accepted.
	Accepted bool
	// NodeBits are the per-node outputs.
	NodeBits []bool
	// Result carries the run's cost statistics and (if requested)
	// transcripts.
	Result *clique.Result
}

// RunVerifier executes A on (g, z) and reports global acceptance.
func RunVerifier(cfg clique.Config, g *graph.Graph, alg Algorithm, z Labelling) (Verdict, error) {
	if cfg.N == 0 {
		cfg.N = g.N
	}
	if cfg.N != g.N {
		return Verdict{}, fmt.Errorf("nondet: config N=%d but graph has %d nodes", cfg.N, g.N)
	}
	bits := make([]bool, g.N)
	res, err := clique.Run(cfg, func(nd *clique.Node) {
		var label []uint64
		if nd.ID() < len(z) {
			label = z[nd.ID()]
		}
		bits[nd.ID()] = alg(nd, g.Row(nd.ID()), label)
	})
	if err != nil {
		return Verdict{}, err
	}
	all := true
	for _, b := range bits {
		all = all && b
	}
	return Verdict{Accepted: all, NodeBits: bits, Result: res}, nil
}

// LabelSpace enumerates candidate labels for a single node; emit returns
// false to stop early. Spaces must be finite for exhaustive search.
type LabelSpace func(emit func(label []uint64) bool)

// WordSpace is the label space of all single-word labels with value
// below max.
func WordSpace(max uint64) LabelSpace {
	return func(emit func([]uint64) bool) {
		for w := uint64(0); w < max; w++ {
			if !emit([]uint64{w}) {
				return
			}
		}
	}
}

// TupleSpace is the label space of all width-length word vectors with
// values below max.
func TupleSpace(max uint64, width int) LabelSpace {
	return func(emit func([]uint64) bool) {
		label := make([]uint64, width)
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == width {
				return emit(append([]uint64(nil), label...))
			}
			for w := uint64(0); w < max; w++ {
				label[i] = w
				if !rec(i + 1) {
					return false
				}
			}
			return true
		}
		rec(0)
	}
}

// ExhaustiveDecide realises the "exists z" semantics by brute force:
// it enumerates every labelling with per-node labels drawn from space
// and reports whether any is accepted. Exponential in n; usable only on
// micro instances, which is exactly how the tests exercise the
// definition of NCLIQUE.
func ExhaustiveDecide(cfg clique.Config, g *graph.Graph, alg Algorithm, space LabelSpace) (bool, Labelling, error) {
	var all [][]uint64
	space(func(l []uint64) bool {
		all = append(all, l)
		return true
	})
	z := make(Labelling, g.N)
	var found Labelling
	var rec func(v int) (bool, error)
	rec = func(v int) (bool, error) {
		if v == g.N {
			verdict, err := RunVerifier(cfg, g, alg, z)
			if err != nil {
				return false, err
			}
			if verdict.Accepted {
				found = make(Labelling, g.N)
				for i := range z {
					found[i] = append([]uint64(nil), z[i]...)
				}
				return true, nil
			}
			return false, nil
		}
		for _, l := range all {
			z[v] = l
			ok, err := rec(v + 1)
			if ok || err != nil {
				return ok, err
			}
		}
		return false, nil
	}
	ok, err := rec(0)
	return ok, found, err
}
