package stats

import (
	"fmt"
	"math"
)

// Fit is a least-squares power-law fit y = Coeff · x^Exponent, obtained
// by ordinary least squares on (ln x, ln y). It carries the slope's
// standard error and Student-t confidence interval, which is what turns
// a fitted round-complexity exponent into a statistically defensible
// claim: "the measured exponent is 0.33 ± 0.02" rather than "the four
// points looked like n^(1/3)".
type Fit struct {
	// N is the number of (x, y) pairs used (both finite and positive).
	N int `json:"n"`
	// Exponent is the fitted slope in log-log space.
	Exponent float64 `json:"exponent"`
	// Coeff is exp(intercept): the fitted constant factor.
	Coeff float64 `json:"coeff"`
	// StdErr is the slope's standard error; 0 when N < 3 (a two-point
	// fit is exact and carries no error estimate).
	StdErr float64 `json:"std_err"`
	// CILo and CIHi bound the slope's two-sided Student-t confidence
	// interval at Level; both collapse to Exponent when N < 3.
	CILo float64 `json:"ci_lo"`
	CIHi float64 `json:"ci_hi"`
	// Level is the confidence level of [CILo, CIHi].
	Level float64 `json:"level"`
	// R2 is the coefficient of determination in log-log space; 1 for an
	// exact fit (including the degenerate all-points-equal case).
	R2 float64 `json:"r2"`
}

func (f Fit) String() string {
	if f.N < 3 {
		return fmt.Sprintf("x^%.3f (n=%d)", f.Exponent, f.N)
	}
	return fmt.Sprintf("x^%.3f ± %.3f (n=%d, %g%% CI [%.3f, %.3f], R²=%.3f)",
		f.Exponent, f.HalfWidth(), f.N, 100*f.Level, f.CILo, f.CIHi, f.R2)
}

// HalfWidth is the slope interval's half-width; 0 when N < 3.
func (f Fit) HalfWidth() float64 { return (f.CIHi - f.CILo) / 2 }

// FitPower fits y = C·x^a by least squares on the log-log transform at
// the given confidence level (0 means DefaultLevel). Pairs with
// non-positive or non-finite coordinates are skipped (a zero-round
// measurement has no logarithm); at least two usable pairs with
// distinct x are required.
func FitPower(xs, ys []float64, level float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: FitPower got %d xs and %d ys", len(xs), len(ys))
	}
	if level == 0 {
		level = DefaultLevel
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 && !math.IsInf(xs[i], 1) && !math.IsInf(ys[i], 1) {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := len(lx)
	if n < 2 {
		return Fit{}, fmt.Errorf("stats: FitPower needs at least 2 positive pairs, got %d", n)
	}
	mx, my := mean(lx), mean(ly)
	var sxx, sxy, syy float64
	for i := range lx {
		dx, dy := lx[i]-mx, ly[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: FitPower needs at least 2 distinct x values")
	}
	slope := sxy / sxx
	f := Fit{
		N:        n,
		Exponent: slope,
		Coeff:    math.Exp(my - slope*mx),
		Level:    level,
		CILo:     slope,
		CIHi:     slope,
		R2:       1,
	}
	sse := syy - slope*sxy
	if sse < 0 { // guard rounding
		sse = 0
	}
	if syy > 0 {
		f.R2 = 1 - sse/syy
	}
	if n >= 3 {
		f.StdErr = math.Sqrt(sse / float64(n-2) / sxx)
		half := TQuantile(1-(1-level)/2, n-2) * f.StdErr
		f.CILo, f.CIHi = slope-half, slope+half
	}
	return f, nil
}

func mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
