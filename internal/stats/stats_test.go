package stats_test

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/stats"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// TestTQuantile pins the t quantile against standard table values —
// the closed-form anchors of the whole CI layer. df=1 is the Cauchy
// distribution, whose quantile has the exact form tan(π(p-1/2)).
func TestTQuantile(t *testing.T) {
	cases := []struct {
		p    float64
		df   int
		want float64
	}{
		{0.975, 1, 12.7062}, // Cauchy: tan(0.475π)
		{0.975, 2, 4.30265},
		{0.975, 4, 2.77645},
		{0.975, 9, 2.26216},
		{0.975, 29, 2.04523},
		{0.95, 5, 2.01505},
		{0.995, 10, 3.16927},
		{0.975, 100000, 1.95997}, // → normal 1.95996
	}
	for _, c := range cases {
		approx(t, "TQuantile", stats.TQuantile(c.p, c.df), c.want, 5e-4)
	}
	// Exact Cauchy closed form at several probabilities.
	for _, p := range []float64{0.6, 0.75, 0.9, 0.99} {
		approx(t, "TQuantile(Cauchy)", stats.TQuantile(p, 1), math.Tan(math.Pi*(p-0.5)), 1e-6)
	}
	// Symmetry and median.
	if q := stats.TQuantile(0.5, 7); q != 0 {
		t.Errorf("median quantile = %v, want 0", q)
	}
	approx(t, "symmetry", stats.TQuantile(0.025, 4), -stats.TQuantile(0.975, 4), 1e-9)
}

// TestSummarize checks the closed-form case {1..5}: mean 3,
// std sqrt(2.5), CI half-width t(0.975,4)·std/√5.
func TestSummarize(t *testing.T) {
	s := stats.Summarize([]float64{1, 2, 3, 4, 5}, 0)
	if s.N != 5 || s.Level != 0.95 {
		t.Fatalf("summary header = %+v", s)
	}
	approx(t, "mean", s.Mean, 3, 1e-12)
	approx(t, "std", s.Std, math.Sqrt(2.5), 1e-12)
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	half := 2.77645 * math.Sqrt(2.5) / math.Sqrt(5)
	approx(t, "ci_lo", s.CILo, 3-half, 1e-4)
	approx(t, "ci_hi", s.CIHi, 3+half, 1e-4)
	approx(t, "half-width", s.HalfWidth(), half, 1e-4)
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := stats.Summarize(nil, 0); s.N != 0 || s.Mean != 0 || s.Level != 0.95 {
		t.Errorf("empty summary = %+v", s)
	}
	s := stats.Summarize([]float64{7}, 0.9)
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.CILo != 7 || s.CIHi != 7 {
		t.Errorf("singleton summary = %+v", s)
	}
	// Zero variance: the CI collapses to the mean.
	s = stats.Summarize([]float64{4, 4, 4, 4}, 0)
	if s.Std != 0 || s.CILo != 4 || s.CIHi != 4 {
		t.Errorf("constant-sample summary = %+v", s)
	}
}

// TestFitPowerExact: an exact power law must come back with the exact
// exponent, coefficient, zero standard error and R² = 1.
func TestFitPowerExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 * math.Pow(x, 1.5)
	}
	f, err := stats.FitPower(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "exponent", f.Exponent, 1.5, 1e-9)
	approx(t, "coeff", f.Coeff, 2, 1e-9)
	approx(t, "stderr", f.StdErr, 0, 1e-9)
	approx(t, "r2", f.R2, 1, 1e-9)
	approx(t, "ci width", f.HalfWidth(), 0, 1e-7)
}

// TestFitPowerKnown pins a hand-computed regression: points
// (e^0, e^0.1), (e^1, e^1.9), (e^2, e^4.1), (e^3, e^5.9) give slope
// 1.96, intercept 0.06, SSE 0.032, se = √(0.016/5), R² = 1-0.032/19.24.
func TestFitPowerKnown(t *testing.T) {
	lx := []float64{0, 1, 2, 3}
	ly := []float64{0.1, 1.9, 4.1, 5.9}
	xs := make([]float64, len(lx))
	ys := make([]float64, len(ly))
	for i := range lx {
		xs[i] = math.Exp(lx[i])
		ys[i] = math.Exp(ly[i])
	}
	f, err := stats.FitPower(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "exponent", f.Exponent, 1.96, 1e-9)
	approx(t, "coeff", f.Coeff, math.Exp(0.06), 1e-9)
	se := math.Sqrt(0.016 / 5)
	approx(t, "stderr", f.StdErr, se, 1e-9)
	half := 4.30265 * se
	approx(t, "ci_lo", f.CILo, 1.96-half, 1e-4)
	approx(t, "ci_hi", f.CIHi, 1.96+half, 1e-4)
	approx(t, "r2", f.R2, 1-0.032/19.24, 1e-9)
}

func TestFitPowerDegenerate(t *testing.T) {
	if _, err := stats.FitPower([]float64{1, 2}, []float64{3}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := stats.FitPower([]float64{1, 0}, []float64{1, 2}, 0); err == nil {
		t.Error("one usable pair accepted")
	}
	if _, err := stats.FitPower([]float64{4, 4, 4}, []float64{1, 2, 3}, 0); err == nil {
		t.Error("all-equal x accepted")
	}
	// Zero-valued ys are skipped, not logged.
	f, err := stats.FitPower([]float64{1, 2, 4, 8}, []float64{0, 1, 2, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.N != 3 {
		t.Errorf("N = %d, want 3 (zero y skipped)", f.N)
	}
	approx(t, "exponent", f.Exponent, 1, 1e-9)
	// Two points: exact fit, no error estimate.
	f, err = stats.FitPower([]float64{2, 8}, []float64{3, 12}, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "two-point exponent", f.Exponent, 1, 1e-12)
	if f.StdErr != 0 || f.CILo != f.Exponent || f.CIHi != f.Exponent {
		t.Errorf("two-point fit carries an error estimate: %+v", f)
	}
}

// TestSummaryJSONStable: summaries serialise deterministically and
// round-trip — the property grid summaries rely on for byte-identical
// artefacts.
func TestSummaryJSONStable(t *testing.T) {
	s := stats.Summarize([]float64{3, 1, 4, 1, 5, 9, 2, 6}, 0)
	a, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back stats.Summary
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("summary JSON unstable:\n%s\n%s", a, b)
	}
}
