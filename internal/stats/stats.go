package stats

import (
	"fmt"
	"math"
)

// DefaultLevel is the two-sided confidence level used when callers do
// not pick one. 0.95 matches the convention of every table in the
// paper-runs artefacts.
const DefaultLevel = 0.95

// Summary describes one sample: size, location, spread, range, and a
// two-sided Student-t confidence interval for the mean. All fields are
// pure functions of the input samples, so a Summary serialises
// deterministically.
type Summary struct {
	// N is the sample size.
	N int `json:"n"`
	// Mean is the sample mean.
	Mean float64 `json:"mean"`
	// Std is the sample standard deviation (n-1 denominator); 0 when
	// N < 2.
	Std float64 `json:"std"`
	// Min and Max bound the sample.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// CILo and CIHi bound the mean's two-sided Student-t confidence
	// interval at Level. With N < 2 no interval exists and both collapse
	// to Mean.
	CILo float64 `json:"ci_lo"`
	CIHi float64 `json:"ci_hi"`
	// Level is the two-sided confidence level the interval was computed
	// at (e.g. 0.95).
	Level float64 `json:"level"`
}

// HalfWidth is the confidence interval's half-width; 0 when N < 2.
func (s Summary) HalfWidth() float64 { return (s.CIHi - s.CILo) / 2 }

func (s Summary) String() string {
	return fmt.Sprintf("mean %.4g ± %.2g (n=%d, %g%% CI [%.4g, %.4g])",
		s.Mean, s.HalfWidth(), s.N, 100*s.Level, s.CILo, s.CIHi)
}

// Summarize computes the Summary of xs at the given two-sided
// confidence level; level 0 means DefaultLevel. An empty sample
// returns the zero Summary (with the level filled in).
func Summarize(xs []float64, level float64) Summary {
	if level == 0 {
		level = DefaultLevel
	}
	s := Summary{N: len(xs), Level: level}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	s.CILo, s.CIHi = s.Mean, s.Mean
	if len(xs) < 2 {
		return s
	}
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)-1))
	half := TQuantile(1-(1-level)/2, len(xs)-1) * s.Std / math.Sqrt(float64(len(xs)))
	s.CILo, s.CIHi = s.Mean-half, s.Mean+half
	return s
}

// TQuantile returns the p-quantile of Student's t distribution with df
// degrees of freedom (the inverse CDF), e.g. TQuantile(0.975, 4) ≈
// 2.776. It panics on p outside (0,1) or df < 1 — both indicate a
// caller bug, not data.
func TQuantile(p float64, df int) float64 {
	if !(p > 0 && p < 1) || df < 1 {
		panic(fmt.Sprintf("stats: TQuantile(%v, %d) out of domain", p, df))
	}
	if p == 0.5 {
		return 0
	}
	if p < 0.5 {
		return -TQuantile(1-p, df)
	}
	// Invert the CDF by bisection: tCDF is monotone and cheap, and the
	// bracket below covers every (p, df) this repo can produce (the
	// heaviest tail, df=1, has quantiles ~tan(π(p-1/2)) which stays far
	// inside 1e9 for any p representable distinguishably below 1).
	lo, hi := 0.0, 1e9
	for i := 0; i < 200 && hi-lo > 1e-12*(1+lo); i++ {
		mid := lo + (hi-lo)/2
		if tCDF(mid, float64(df)) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// tCDF is the CDF of Student's t distribution with ν degrees of
// freedom, via the regularised incomplete beta function:
// P(T ≤ x) = 1 - I_{ν/(ν+x²)}(ν/2, 1/2)/2 for x ≥ 0.
func tCDF(x, nu float64) float64 {
	if x == 0 {
		return 0.5
	}
	ib := regIncBeta(nu/2, 0.5, nu/(nu+x*x))
	if x > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// regIncBeta is the regularised incomplete beta function I_x(a, b),
// computed with the continued-fraction expansion (Lentz's method, the
// standard betacf formulation) — accurate to ~1e-14 over this package's
// domain (a = ν/2, b = 1/2).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lg1, _ := math.Lgamma(a + b)
	lg2, _ := math.Lgamma(a)
	lg3, _ := math.Lgamma(b)
	bt := math.Exp(lg1 - lg2 - lg3 + a*math.Log(x) + b*math.Log1p(-x))
	// The continued fraction converges fast for x < (a+1)/(a+b+2); use
	// the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) on the other side.
	if x < (a+1)/(a+b+2) {
		return bt * betacf(a, b, x) / a
	}
	return 1 - bt*betacf(b, a, 1-x)/b
}

// betacf evaluates the incomplete-beta continued fraction by the
// modified Lentz algorithm.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-15
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
