// Package stats is the repo's small statistics layer: sample summaries
// with Student-t confidence intervals and least-squares power-law fits
// with slope confidence intervals. It exists so the experiment-grid
// runner (internal/grid) and the benchmark regression gate
// (internal/exp.Compare) agree on one definition of "noise": every
// repeat-aware artefact — grid summaries, BENCH_baseline.json
// distributions, fitted round-complexity exponents — routes its
// interval math through here.
//
// The package is dependency-free and deterministic: the same samples
// always produce the same Summary bytes, which is what lets grid
// summaries (timing fields excluded) stay byte-identical across worker
// counts.
package stats
