// Package client is the Go client for the cliqued service, built for
// the failure semantics the server documents: requests are idempotent
// by construction (a canonical request always maps to the same
// envelope bytes), so the client retries freely — transport errors,
// 503 shed/shutdown, 504 deadline and 500 run failures — with
// exponential backoff, full jitter, and a hard retry budget. A 503's
// Retry-After header, when present, sets the floor for the next delay
// so shed retries pace themselves to the server's own estimate.
//
// Retrying a 504 or 500 is safe for the same reason retrying a
// connection reset is: the daemon's result cache and ledger make the
// retried request a lookup, not a re-execution, whenever the first
// attempt actually completed. Client-visible failures therefore mean
// "not done yet", never "maybe done twice".
//
// Non-retryable statuses (4xx: the request itself is wrong) surface
// immediately as *StatusError without consuming the budget.
package client
