package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Config parameterises a Client. The zero value is usable: every field
// has a default applied by New.
type Config struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8347".
	// Default: http://localhost:8347.
	BaseURL string
	// HTTPClient is the transport. Default: a client with a 0 (no)
	// overall timeout — per-call deadlines belong to the caller's ctx.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call (first attempt included).
	// Default: 6.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt k waits a
	// full-jitter draw from [0, min(MaxDelay, BaseDelay·2^(k-1))].
	// Default: 100ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff delay. Default: 5s.
	MaxDelay time.Duration
	// RetryBudget caps the total time a call may spend across attempts
	// and waits; once the next delay would cross it, the call fails
	// with the last attempt's error. Default: 60s.
	RetryBudget time.Duration
	// Seed fixes the jitter PRNG for reproducible retry schedules.
	// Default: 1.
	Seed uint64

	// sleep is the test seam for backoff waits.
	sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.BaseURL == "" {
		c.BaseURL = "http://localhost:8347"
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 6
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 100 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 5 * time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.sleep == nil {
		c.sleep = sleepCtx
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StatusError is a non-2xx response, carrying the taxonomy status and
// the server's error message.
type StatusError struct {
	Status     int
	Message    string
	RetryAfter time.Duration // parsed Retry-After, 0 if absent
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("cliqued: HTTP %d: %s", e.Status, e.Message)
}

// ErrBudgetExhausted wraps the final attempt's error once the retry
// budget or attempt count runs out.
var ErrBudgetExhausted = errors.New("retry budget exhausted")

// Client calls a cliqued daemon with retries. Safe for concurrent
// use; the jitter PRNG is locked, so concurrent calls interleave
// draws but each draw is a valid sample.
type Client struct {
	cfg Config
	rng *lockedRand
}

// New builds a Client.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	return &Client{cfg: cfg, rng: &lockedRand{state: cfg.Seed}}
}

// RunRequest mirrors POST /v1/run's body.
type RunRequest struct {
	Algorithm    string `json:"algorithm"`
	N            int    `json:"n"`
	WordsPerPair int    `json:"words_per_pair,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	Backend      string `json:"backend,omitempty"`
	Quick        bool   `json:"quick,omitempty"`
	Trace        bool   `json:"trace,omitempty"`
	TimeoutMS    int64  `json:"timeout_ms,omitempty"`
}

// ExperimentOptions mirrors POST /v1/experiments/{id}:run's body.
type ExperimentOptions struct {
	Backend   string `json:"backend,omitempty"`
	Quick     bool   `json:"quick,omitempty"`
	Trace     bool   `json:"trace,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// Run executes an ad-hoc simulation and returns the cliquebench/v1
// envelope bytes exactly as served.
func (c *Client) Run(ctx context.Context, req RunRequest) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.do(ctx, http.MethodPost, "/v1/run", body)
}

// RunExperiment executes a registered experiment and returns the
// envelope bytes.
func (c *Client) RunExperiment(ctx context.Context, id string, opts ExperimentOptions) ([]byte, error) {
	body, err := json.Marshal(opts)
	if err != nil {
		return nil, err
	}
	return c.do(ctx, http.MethodPost, "/v1/experiments/"+id+":run", body)
}

// LedgerStats returns the durable tier's integrity view, or a
// *StatusError with status 404 when the daemon runs without a ledger.
func (c *Client) LedgerStats(ctx context.Context) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/v1/ledger/stats", nil)
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	_, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	return err
}

// retryable reports whether a status is worth another attempt: the
// 5xx legs of the server's error taxonomy. Every request the client
// can issue is idempotent by construction, so retrying a failure can
// never double work — at worst it hits the daemon's cache.
func retryable(status int) bool {
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do runs the retry loop around one logical call.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	start := time.Now()
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := c.backoff(attempt, retryAfter)
			if time.Since(start)+delay > c.cfg.RetryBudget {
				break
			}
			if err := c.cfg.sleep(ctx, delay); err != nil {
				return nil, err
			}
		}
		data, serr, err := c.attempt(ctx, method, path, body)
		switch {
		case err == nil && serr == nil:
			return data, nil
		case err != nil:
			// Transport-level failure (connection refused, reset, EOF
			// from a killed daemon). Retryable unless the caller's ctx
			// is what gave out.
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr, retryAfter = err, 0
		case !retryable(serr.Status):
			return nil, serr
		default:
			lastErr, retryAfter = serr, serr.RetryAfter
		}
	}
	return nil, fmt.Errorf("%w after %v: %w", ErrBudgetExhausted,
		time.Since(start).Round(time.Millisecond), lastErr)
}

// attempt issues one HTTP exchange. Exactly one of the returns is
// non-nil/non-zero: (data, nil, nil) on 2xx, (nil, serr, nil) on a
// non-2xx response, (nil, nil, err) on transport failure.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte) ([]byte, *StatusError, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode/100 == 2 {
		return data, nil, nil
	}
	serr := &StatusError{Status: resp.StatusCode, Message: errorMessage(data)}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.ParseInt(ra, 10, 64); err == nil && secs > 0 {
			serr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return nil, serr, nil
}

// errorMessage extracts the service's {"error": ...} shape, falling
// back to the raw body.
func errorMessage(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(data))
}

// backoff computes the wait before the given attempt (1-based over
// retries): a full-jitter draw from [0, min(MaxDelay, BaseDelay·2^
// (attempt-1))], floored by the server's Retry-After when one was
// given — the server's estimate of when capacity returns outranks the
// client's blind guess, but jitter still spreads clients that were
// all shed in the same instant.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	ceil := c.cfg.BaseDelay << (attempt - 1)
	if ceil > c.cfg.MaxDelay || ceil <= 0 {
		ceil = c.cfg.MaxDelay
	}
	d := time.Duration(c.rng.float64() * float64(ceil))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}
