package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newRecordingClient builds a client whose sleeps are recorded instead
// of slept, so retry schedules are asserted without wall-clock cost.
func newRecordingClient(url string, cfg Config, slept *[]time.Duration) *Client {
	cfg.BaseURL = url
	cfg.sleep = func(_ context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return nil
	}
	return New(cfg)
}

// TestRetriesUntilSuccess pins the basic loop: transient 503s are
// retried and the eventual 200's body comes back verbatim.
func TestRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"job queue full"}`))
			return
		}
		w.Write([]byte(`{"schema":"cliquebench/v1"}`))
	}))
	defer ts.Close()

	var slept []time.Duration
	c := newRecordingClient(ts.URL, Config{Seed: 42}, &slept)
	data, err := c.Run(context.Background(), RunRequest{Algorithm: "exchange", N: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(string(data), "cliquebench/v1") {
		t.Fatalf("unexpected body: %s", data)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
}

// TestBackoffGrowsWithJitter pins the schedule shape: each delay is a
// full-jitter draw below an exponentially growing ceiling, and the
// same seed reproduces the same schedule.
func TestBackoffGrowsWithJitter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"injected"}`))
	}))
	defer ts.Close()

	run := func() []time.Duration {
		var slept []time.Duration
		c := newRecordingClient(ts.URL, Config{
			Seed: 7, MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
		}, &slept)
		if _, err := c.Run(context.Background(), RunRequest{Algorithm: "exchange", N: 8}); !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("want ErrBudgetExhausted, got %v", err)
		}
		return slept
	}
	first := run()
	if len(first) != 4 {
		t.Fatalf("slept %d times, want 4 (MaxAttempts-1)", len(first))
	}
	for i, d := range first {
		ceil := 100 * time.Millisecond << i
		if ceil > time.Second {
			ceil = time.Second
		}
		if d < 0 || d >= ceil {
			t.Fatalf("delay %d = %v outside [0, %v)", i, d, ceil)
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed, different schedule: %v vs %v", first, second)
		}
	}
}

// TestRetryAfterIsFloor pins Retry-After honoring: the server's
// estimate floors the jittered delay.
func TestRetryAfterIsFloor(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"job queue full"}`))
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	var slept []time.Duration
	// BaseDelay 1ms: any jitter draw is far below the 2s Retry-After,
	// so observing a 2s delay proves the header set the floor.
	c := newRecordingClient(ts.URL, Config{BaseDelay: time.Millisecond, RetryBudget: time.Minute}, &slept)
	if _, err := c.Run(context.Background(), RunRequest{Algorithm: "exchange", N: 8}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("slept %v, want exactly [2s]", slept)
	}
}

// TestNonRetryableFailsFast pins that a 400 — the request itself is
// wrong — surfaces immediately without burning attempts.
func TestNonRetryableFailsFast(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"unknown algorithm"}`))
	}))
	defer ts.Close()

	var slept []time.Duration
	c := newRecordingClient(ts.URL, Config{}, &slept)
	_, err := c.Run(context.Background(), RunRequest{Algorithm: "nope", N: 8})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Status != http.StatusBadRequest {
		t.Fatalf("want StatusError{400}, got %v", err)
	}
	if !strings.Contains(serr.Message, "unknown algorithm") {
		t.Fatalf("message not propagated: %q", serr.Message)
	}
	if calls.Load() != 1 || len(slept) != 0 {
		t.Fatalf("retried a 400: calls=%d sleeps=%d", calls.Load(), len(slept))
	}
}

// TestRetryBudgetCapsTotalTime pins the budget: once the next delay
// would cross it, the call stops and wraps the last error.
func TestRetryBudgetCapsTotalTime(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"job queue full"}`))
	}))
	defer ts.Close()

	var slept []time.Duration
	c := newRecordingClient(ts.URL, Config{RetryBudget: 10 * time.Second, MaxAttempts: 10}, &slept)
	_, err := c.Run(context.Background(), RunRequest{Algorithm: "exchange", N: 8})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	// The 30s Retry-After floor exceeds the 10s budget on the first
	// retry, so nothing was ever slept.
	if len(slept) != 0 {
		t.Fatalf("slept %v despite the budget", slept)
	}
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Status != http.StatusServiceUnavailable {
		t.Fatalf("budget error does not wrap the last StatusError: %v", err)
	}
}

// TestTransportErrorsRetryAndConverge pins the crash-recovery story's
// client half: connection failures (a killed daemon) are retried, and
// the call converges once the endpoint is back.
func TestTransportErrorsRetryAndConverge(t *testing.T) {
	// The daemon "dies mid-exchange" on the first two attempts — the
	// handler hijacks the connection and slams it shut, which the
	// client sees as a transport error — then "restarts".
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) <= 2 {
			conn, _, _ := w.(http.Hijacker).Hijack()
			conn.Close()
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	var slept []time.Duration
	c := newRecordingClient(ts.URL, Config{}, &slept)
	if _, err := c.Run(context.Background(), RunRequest{Algorithm: "exchange", N: 8}); err != nil {
		t.Fatalf("did not converge across the outage: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times across the outage, want 2", len(slept))
	}
}

// TestContextCancelStopsRetrying pins that the caller's ctx outranks
// the retry loop.
func TestContextCancelStopsRetrying(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"job queue full"}`))
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{MaxAttempts: 100}
	cfg.BaseURL = ts.URL
	cfg.sleep = func(ctx context.Context, _ time.Duration) error {
		cancel()
		return ctx.Err()
	}
	c := New(cfg)
	_, err := c.Run(ctx, RunRequest{Algorithm: "exchange", N: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
