package client

import "sync"

// lockedRand is a tiny seeded PRNG (splitmix64) behind a mutex. A
// dedicated generator instead of math/rand keeps retry schedules
// reproducible from Config.Seed without touching process-global state
// — the same discipline internal/fault uses for its clause PRNGs.
type lockedRand struct {
	mu    sync.Mutex
	state uint64
}

// float64 draws a uniform sample from [0, 1).
func (r *lockedRand) float64() float64 {
	r.mu.Lock()
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	r.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
