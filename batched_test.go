package repro

import (
	"reflect"
	"testing"

	"repro/internal/clique"
	"repro/internal/workload"
)

// This file pins the batched execution plane's tentpole guarantee at
// the top of the stack: driving a seed sweep through one
// clique.RunBatch produces, run for run, exactly the Stats,
// Transcripts, and errors that serial clique.Run calls produce — for
// every algorithm in the workload catalogue, on every backend.

// checkBatchedEquivalence runs the programs once batched and once
// serially on the given backend and compares per-run results
// field for field.
func checkBatchedEquivalence(t *testing.T, cfg clique.Config, programs []clique.NodeFunc, rebuild func(run int) clique.NodeFunc) {
	t.Helper()
	batchedRes, batchedErrs := clique.RunBatch(cfg, programs)
	if len(batchedRes) != len(programs) || len(batchedErrs) != len(programs) {
		t.Fatalf("RunBatch shape: %d results / %d errors for %d programs",
			len(batchedRes), len(batchedErrs), len(programs))
	}
	for r := range programs {
		serialRes, serialErr := clique.Run(cfg, rebuild(r))
		if (batchedErrs[r] == nil) != (serialErr == nil) {
			t.Fatalf("run %d: batched err = %v, serial err = %v", r, batchedErrs[r], serialErr)
		}
		if batchedErrs[r] != nil {
			if batchedErrs[r].Error() != serialErr.Error() {
				t.Fatalf("run %d: batched err %q != serial err %q", r, batchedErrs[r], serialErr)
			}
			continue
		}
		if batchedRes[r].Stats != serialRes.Stats {
			t.Fatalf("run %d: batched stats %+v != serial %+v", r, batchedRes[r].Stats, serialRes.Stats)
		}
		if !reflect.DeepEqual(batchedRes[r].Transcripts, serialRes.Transcripts) {
			t.Fatalf("run %d: batched transcripts diverge from serial", r)
		}
	}
}

// TestBatchedEquivalenceAcrossWorkloads sweeps the whole algorithm
// catalogue on both backends: three seeds per algorithm, batched vs
// serial, transcripts recorded.
func TestBatchedEquivalenceAcrossWorkloads(t *testing.T) {
	const n, batch = 16, 3
	for _, alg := range workload.All() {
		for _, backend := range clique.Backends() {
			t.Run(alg.Name+"/"+backend, func(t *testing.T) {
				cfg := clique.Config{N: n, WordsPerPair: alg.WPP,
					RecordTranscript: true, Backend: backend}
				programs := make([]clique.NodeFunc, batch)
				for r := range programs {
					programs[r] = alg.Make(n, uint64(r+1))
				}
				checkBatchedEquivalence(t, cfg, programs, func(run int) clique.NodeFunc {
					return alg.Make(n, uint64(run+1))
				})
			})
		}
	}
}

// TestBatchedEquivalenceViolations pins the per-run failure contract at
// the clique layer: a run that violates the model inside a batch fails
// with the exact serial error string while sibling runs complete.
func TestBatchedEquivalenceViolations(t *testing.T) {
	const n, batch = 6, 4
	makeProg := func(run int) clique.NodeFunc {
		return func(nd *clique.Node) {
			nd.Broadcast(uint64(run))
			nd.Tick()
			if run == 2 && nd.ID() == 1 {
				// Over-budget in round 1. A single violator keeps the
				// error deterministic on the goroutine backend too, which
				// reports whichever violating node it detects first.
				nd.Send(0, 1, 2)
			}
			nd.Tick()
		}
	}
	for _, backend := range clique.Backends() {
		t.Run(backend, func(t *testing.T) {
			cfg := clique.Config{N: n, WordsPerPair: 1, RecordTranscript: true, Backend: backend}
			programs := make([]clique.NodeFunc, batch)
			for r := range programs {
				programs[r] = makeProg(r)
			}
			checkBatchedEquivalence(t, cfg, programs, makeProg)
			_, errs := clique.RunBatch(cfg, programs)
			for r, err := range errs {
				if (r == 2) != (err != nil) {
					t.Fatalf("run %d: err = %v; only run 2 should fail", r, err)
				}
			}
		})
	}
}

// TestBatchedEquivalenceFuzz is the always-on slice of the fuzz target:
// a fixed seed sweep that runs under plain `go test`.
func TestBatchedEquivalenceFuzz(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		checkBatchedFuzzSeed(t, seed)
	}
}

// checkBatchedFuzzSeed batches four pseudo-random programs derived from
// the seed and compares each against its serial twin on every backend.
func checkBatchedFuzzSeed(t *testing.T, seed int64) {
	t.Helper()
	n := 3 + int(((seed%5)+5)%5) // 3..7, well-defined for negative seeds
	const wpp, batch = 3, 4
	for _, backend := range clique.Backends() {
		cfg := clique.Config{N: n, WordsPerPair: wpp, RecordTranscript: true, Backend: backend}
		programs := make([]clique.NodeFunc, batch)
		for r := range programs {
			programs[r] = fuzzBackendProgram(seed+int64(r), n, wpp)
		}
		checkBatchedEquivalence(t, cfg, programs, func(run int) clique.NodeFunc {
			return fuzzBackendProgram(seed+int64(run), n, wpp)
		})
	}
}

// FuzzBatchedEquivalence is the coverage-guided form: the fuzzer picks
// arbitrary seeds (and through them n, round counts, and send patterns)
// hunting for any divergence between batched and serial execution.
// CI runs it for a short fixed budget; locally:
//
//	go test -run '^$' -fuzz FuzzBatchedEquivalence -fuzztime=30s .
func FuzzBatchedEquivalence(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkBatchedFuzzSeed(t, seed)
	})
}
